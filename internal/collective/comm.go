// Package collective implements the fourteen MPI-1 collective communication
// operations in two ways: a flat, topology-unaware style (the MPICH
// algorithms of the paper's era) and a hierarchical, wide-area-optimal
// style modelled on MagPIe (Section 6 of the paper; Kielmann et al.,
// PPoPP'99).
//
// The MagPIe property is that every data item crosses each slow wide-area
// link at most once, and every collective operation completes in a small
// constant number of wide-area latencies. The flat algorithms, in
// contrast, let their trees straddle cluster boundaries, so the same data
// crosses the slow links many times — up to 10x slower on the paper's
// 10 ms / 1 MByte/s configuration.
package collective

import (
	"fmt"

	"twolayer/internal/par"
	"twolayer/internal/sim"
)

// Style selects the algorithm family of a Comm.
type Style int

const (
	// Flat is the topology-unaware MPICH-like family.
	Flat Style = iota
	// Hierarchical is the two-level, cluster-aware MagPIe-like family.
	Hierarchical
)

// String returns "flat" or "hierarchical".
func (s Style) String() string {
	if s == Flat {
		return "flat"
	}
	return "hierarchical"
}

// elemBytes is the simulated wire size of one vector element.
const elemBytes = 8

// headerBytes is the per-message protocol header charged on the wire.
const headerBytes = 16

// Comm provides collective operations over all ranks of an SPMD program.
// Like an MPI communicator, every rank must construct its own Comm with the
// same style and then invoke the same sequence of collective calls.
type Comm struct {
	e     *par.Env
	style Style
	seq   int // per-rank operation counter; must stay aligned across ranks
}

// New returns a communicator for e using the given algorithm family.
func New(e *par.Env, style Style) *Comm {
	return &Comm{e: e, style: style}
}

// Env returns the underlying environment.
func (c *Comm) Env() *par.Env { return c.e }

// Style returns the communicator's algorithm family.
func (c *Comm) Style() Style { return c.style }

// nextTag starts a new collective operation and returns its base tag.
// Collective tags are negative odd numbers at or below -3001, a range
// disjoint from application tags (non-negative), RPC reply tags (negative
// even) and the runtime barrier tags (-1001/-1003). Each operation gets a
// block of tag slots so its phases cannot cross-talk with the next call.
func (c *Comm) nextTag() par.Tag {
	t := par.Tag(-(3001 + c.seq*tagStride))
	c.seq++
	return t
}

// tagStride is the number of tag slots reserved per collective call (even,
// to preserve oddness of derived tags).
const tagStride = 8

// phase derives the tag for phase i (0..3) of an operation.
func phase(base par.Tag, i int) par.Tag { return base - par.Tag(2*i) }

// vecBytes is the wire size of a vector message.
func vecBytes(n int) int64 { return headerBytes + int64(n)*elemBytes }

// combineCostPerElem is the virtual compute time charged per vector element
// when a reduction operator is applied.
const combineCostPerElem = 10 * sim.Nanosecond

// sizesOf returns the per-segment lengths of ragged segments.
func sizesOf(segs [][]float64) []int {
	out := make([]int, len(segs))
	for i, s := range segs {
		out[i] = len(s)
	}
	return out
}

// checkUniform verifies that all segments have equal length, the contract
// of the non-"v" operations.
func checkUniform(segs [][]float64, what string) {
	for i := 1; i < len(segs); i++ {
		if len(segs[i]) != len(segs[0]) {
			panic(fmt.Sprintf("collective: %s requires equal segment sizes (use the v-variant); got %d and %d",
				what, len(segs[0]), len(segs[i])))
		}
	}
}
