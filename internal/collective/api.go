package collective

// This file defines the public surface: the fourteen MPI-1 collective
// operations. Every rank must call the same operations in the same order
// (MPI's usual collective-call contract). Operations return the result on
// the ranks that receive one and nil elsewhere, mirroring MPI semantics.

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	tag := c.nextTag()
	zero := []float64{}
	switch c.style {
	case Flat:
		// Flat barrier: reduce-to-0 then broadcast, both over global
		// binomial trees.
		acc := c.flatReduce(phase(tag, 0), 0, zero, Sum)
		if c.e.Rank() != 0 {
			acc = zero
		}
		c.flatBcast(phase(tag, 1), 0, acc)
	default:
		c.hierReduce(phase(tag, 0), 0, zero, Sum)
		c.hierBcast(phase(tag, 2), 0, zero)
	}
}

// Bcast distributes root's vector to every rank and returns it. Non-root
// ranks may pass nil.
func (c *Comm) Bcast(root int, data []float64) []float64 {
	tag := c.nextTag()
	if c.style == Flat {
		return c.flatBcast(tag, root, data)
	}
	return c.hierBcast(tag, root, data)
}

// Gather collects equal-sized vectors from every rank at root; it returns
// the per-rank blocks at root and nil elsewhere.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	return c.Gatherv(root, data)
}

// Gatherv is Gather with per-rank sizes allowed to differ.
func (c *Comm) Gatherv(root int, data []float64) [][]float64 {
	tag := c.nextTag()
	if c.style == Flat {
		return c.flatGather(tag, root, data)
	}
	return c.hierGather(tag, root, data)
}

// Scatter distributes segs[r] from root to each rank r and returns the
// local segment. Only root's segs argument is consulted; segments must be
// equal-sized (use Scatterv otherwise).
func (c *Comm) Scatter(root int, segs [][]float64) []float64 {
	if c.e.Rank() == root {
		checkUniform(segs, "Scatter")
	}
	return c.Scatterv(root, segs)
}

// Scatterv is Scatter with ragged segments.
func (c *Comm) Scatterv(root int, segs [][]float64) []float64 {
	tag := c.nextTag()
	if c.style == Flat {
		return c.flatScatter(tag, root, segs)
	}
	return c.hierScatter(tag, root, segs)
}

// Allgather gives every rank every rank's equal-sized vector.
func (c *Comm) Allgather(data []float64) [][]float64 {
	return c.Allgatherv(data)
}

// Allgatherv is Allgather with ragged contributions.
func (c *Comm) Allgatherv(data []float64) [][]float64 {
	if c.style == Flat {
		tag := c.nextTag()
		return c.flatAllgather(tag, data)
	}
	// MagPIe-style: hierarchical gather to a global root, then hierarchical
	// broadcast of the concatenation — each byte crosses each wide-area
	// link exactly twice (in and out), with sizes piggybacked.
	blocks := c.Gatherv(0, data)
	var flat []float64
	sizes := make([]float64, c.e.Size())
	if c.e.Rank() == 0 {
		flat = concat(blocks)
		for i, b := range blocks {
			sizes[i] = float64(len(b))
		}
	}
	sizes = c.Bcast(0, sizes)
	flat = c.Bcast(0, flat)
	lens := make([]int, len(sizes))
	for i, s := range sizes {
		lens[i] = int(s)
	}
	return split(flat, lens)
}

// Alltoall performs a personalized all-to-all exchange: segs[d] goes to
// rank d; the result's entry j is the segment received from rank j.
// Segments must be equal-sized (use Alltoallv otherwise).
func (c *Comm) Alltoall(segs [][]float64) [][]float64 {
	checkUniform(segs, "Alltoall")
	return c.Alltoallv(segs)
}

// Alltoallv is Alltoall with ragged segments.
func (c *Comm) Alltoallv(segs [][]float64) [][]float64 {
	if len(segs) != c.e.Size() {
		panic("collective: Alltoallv needs one segment per rank")
	}
	tag := c.nextTag()
	if c.style == Flat {
		return c.flatAlltoall(tag, segs)
	}
	return c.hierAlltoall(tag, segs)
}

// Reduce combines every rank's vector with op and returns the result at
// root (nil elsewhere).
func (c *Comm) Reduce(root int, data []float64, op Op) []float64 {
	tag := c.nextTag()
	if c.style == Flat {
		return c.flatReduce(tag, root, data, op)
	}
	return c.hierReduce(tag, root, data, op)
}

// Allreduce combines every rank's vector with op and returns the result on
// every rank.
func (c *Comm) Allreduce(data []float64, op Op) []float64 {
	acc := c.Reduce(0, data, op)
	return c.Bcast(0, acc)
}

// ReduceScatter combines every rank's full-length vector with op, then
// scatters the result: rank r receives counts[r] elements, in rank order.
func (c *Comm) ReduceScatter(data []float64, counts []int, op Op) []float64 {
	if len(counts) != c.e.Size() {
		panic("collective: ReduceScatter needs one count per rank")
	}
	acc := c.Reduce(0, data, op)
	var segs [][]float64
	if c.e.Rank() == 0 {
		segs = split(acc, counts)
	}
	return c.Scatterv(0, segs)
}

// Scan computes the inclusive prefix reduction: rank r receives the
// combination of the vectors of ranks 0..r.
func (c *Comm) Scan(data []float64, op Op) []float64 {
	tag := c.nextTag()
	if c.style == Flat {
		return c.flatScan(tag, data, op)
	}
	return c.hierScan(tag, data, op)
}

// OpNames lists the fourteen collective operations, for harness output.
var OpNames = []string{
	"Barrier", "Bcast", "Gather", "Gatherv", "Scatter", "Scatterv",
	"Allgather", "Allgatherv", "Alltoall", "Alltoallv",
	"Reduce", "Allreduce", "ReduceScatter", "Scan",
}

// BcastSegmented broadcasts root's vector in segments issued back-to-back,
// so successive segments pipeline through the tree: interior nodes forward
// segment k while segment k+1 is still in flight, amortizing the tree's
// latency terms over the payload (the segmentation refinement of the
// MagPIe line of work). With segments=1 it is exactly Bcast.
func (c *Comm) BcastSegmented(root int, data []float64, segments int) []float64 {
	if segments < 1 {
		panic("collective: segments must be positive")
	}
	n := 0
	if c.e.Rank() == root {
		n = len(data)
	}
	// Everyone needs the length to assemble; a tiny bcast carries it.
	meta := c.Bcast(root, []float64{float64(n)})
	n = int(meta[0])
	if segments > n && n > 0 {
		segments = n
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	for s := 0; s < segments; s++ {
		lo, hi := s*n/segments, (s+1)*n/segments
		var part []float64
		if c.e.Rank() == root {
			part = data[lo:hi]
		}
		out = append(out, c.Bcast(root, part)...)
	}
	return out
}
