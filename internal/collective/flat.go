package collective

import "twolayer/internal/par"

// The flat algorithm family: classic topology-unaware implementations in
// the style of MPICH 1.x. Trees and rings are laid out over global ranks,
// so on a two-layer machine the same data item crosses slow wide-area
// links many times.

// vrank maps a rank into the tree rooted at root.
func vrank(rank, root, n int) int { return (rank - root + n) % n }

// rrank inverts vrank.
func rrank(vr, root, n int) int { return (vr + root) % n }

// flatBcast broadcasts over a binomial tree of global ranks rooted at root.
func (c *Comm) flatBcast(tag par.Tag, root int, data []float64) []float64 {
	e := c.e
	n := e.Size()
	vr := vrank(e.Rank(), root, n)
	lowbit := binomialLowbit(vr, n)
	if vr != 0 {
		m := e.RecvFrom(rrank(vr-lowbit, root, n), tag)
		data = m.Data.([]float64)
	}
	for mask := lowbit >> 1; mask >= 1; mask >>= 1 {
		if vr+mask < n {
			e.Send(rrank(vr+mask, root, n), tag, data, vecBytes(len(data)))
		}
	}
	return data
}

// binomialLowbit returns vr's lowest set bit, or the tree height for the
// root so it fans out to every subtree.
func binomialLowbit(vr, n int) int {
	if vr == 0 {
		top := 1
		for top < n {
			top <<= 1
		}
		return top
	}
	return vr & -vr
}

// flatGather: every rank sends its contribution straight to the root
// (linear gather, as in early MPICH).
func (c *Comm) flatGather(tag par.Tag, root int, data []float64) [][]float64 {
	e := c.e
	n := e.Size()
	if e.Rank() != root {
		e.Send(root, tag, data, vecBytes(len(data)))
		return nil
	}
	out := make([][]float64, n)
	out[root] = data
	for i := 0; i < n-1; i++ {
		m := e.Recv(tag)
		out[m.From] = m.Data.([]float64)
	}
	return out
}

// flatScatter: the root sends each rank its segment directly.
func (c *Comm) flatScatter(tag par.Tag, root int, segs [][]float64) []float64 {
	e := c.e
	if e.Rank() != root {
		return e.RecvFrom(root, tag).Data.([]float64)
	}
	for r, seg := range segs {
		if r == root {
			continue
		}
		e.Send(r, tag, seg, vecBytes(len(seg)))
	}
	return segs[root]
}

// flatAllgather: ring algorithm — in step k each rank forwards the block it
// received in step k-1 to its right neighbour; after n-1 steps everyone has
// every block.
func (c *Comm) flatAllgather(tag par.Tag, data []float64) [][]float64 {
	e := c.e
	n := e.Size()
	r := e.Rank()
	right := (r + 1) % n
	left := (r + n - 1) % n
	out := make([][]float64, n)
	out[r] = data
	cur := data
	curOwner := r
	for step := 0; step < n-1; step++ {
		e.Send(right, tag, ownedBlock{curOwner, cur}, vecBytes(len(cur)))
		m := e.RecvFrom(left, tag)
		b := m.Data.(ownedBlock)
		out[b.owner] = b.data
		cur, curOwner = b.data, b.owner
	}
	return out
}

// ownedBlock tags a vector with the rank that contributed it, for ring and
// forwarding protocols.
type ownedBlock struct {
	owner int
	data  []float64
}

// flatAlltoall: direct pairwise exchange; rank r sends to r+1, r+2, ... so
// the sends spread over destinations instead of hammering rank 0 first.
func (c *Comm) flatAlltoall(tag par.Tag, segs [][]float64) [][]float64 {
	e := c.e
	n := e.Size()
	r := e.Rank()
	out := make([][]float64, n)
	out[r] = segs[r]
	for i := 1; i < n; i++ {
		dst := (r + i) % n
		e.Send(dst, tag, segs[dst], vecBytes(len(segs[dst])))
	}
	for i := 1; i < n; i++ {
		m := e.Recv(tag)
		out[m.From] = m.Data.([]float64)
	}
	return out
}

// flatReduce combines vectors up a binomial tree to the root.
func (c *Comm) flatReduce(tag par.Tag, root int, data []float64, op Op) []float64 {
	e := c.e
	n := e.Size()
	vr := vrank(e.Rank(), root, n)
	lowbit := binomialLowbit(vr, n)
	acc := clone(data)
	for mask := 1; mask < lowbit && vr+mask < n; mask <<= 1 {
		m := e.RecvFrom(rrank(vr+mask, root, n), tag)
		child := m.Data.([]float64)
		// The partial reduction costs compute time proportional to length.
		e.ComputeUnits(int64(len(child)), combineCostPerElem)
		op.Combine(acc, child)
	}
	if vr != 0 {
		e.Send(rrank(vr-lowbit, root, n), tag, acc, vecBytes(len(acc)))
		return nil
	}
	return acc
}

// flatScan: linear chain — rank i waits for the running prefix from i-1,
// folds in its own vector and passes it on.
func (c *Comm) flatScan(tag par.Tag, data []float64, op Op) []float64 {
	e := c.e
	r := e.Rank()
	acc := clone(data)
	if r > 0 {
		m := e.RecvFrom(r-1, tag)
		prev := m.Data.([]float64)
		e.ComputeUnits(int64(len(prev)), combineCostPerElem)
		op.Combine(acc, prev)
	}
	if r+1 < e.Size() {
		e.Send(r+1, tag, acc, vecBytes(len(acc)))
	}
	return acc
}
