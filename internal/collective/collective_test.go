package collective

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"twolayer/internal/network"
	"twolayer/internal/par"
	"twolayer/internal/sim"
	"twolayer/internal/topology"
)

// contribution gives rank r's deterministic input vector.
func contribution(r, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(r*100 + i + 1)
	}
	return v
}

// raggedContribution gives rank r a vector whose length depends on r.
func raggedContribution(r int) []float64 {
	v := make([]float64, r%4+1)
	for i := range v {
		v[i] = float64(r*10 + i)
	}
	return v
}

var testTopos = []*topology.Topology{
	topology.SingleCluster(4),
	topology.MustUniform(2, 3),
	topology.DAS(),
	mustNew([]int{1, 5, 2}),
}

func mustNew(sizes []int) *topology.Topology {
	t, err := topology.New(sizes)
	if err != nil {
		panic(err)
	}
	return t
}

var styles = []Style{Flat, Hierarchical}

// approxEqual compares vectors with a relative tolerance: tree reductions
// associate differently than the sequential reference, so the last ulps may
// differ for sum/product.
func approxEqual(got, want []float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		diff := math.Abs(got[i] - want[i])
		scale := math.Max(math.Abs(got[i]), math.Abs(want[i]))
		if diff > 1e-12*math.Max(scale, 1) {
			return false
		}
	}
	return true
}

// runBoth runs job under both styles on every test topology.
func runBoth(t *testing.T, job func(c *Comm)) {
	t.Helper()
	for _, topo := range testTopos {
		for _, style := range styles {
			style := style
			t.Run(fmt.Sprintf("%s/%s", topo, style), func(t *testing.T) {
				_, err := par.Run(topo, network.DefaultParams(), 5, func(e *par.Env) {
					job(New(e, style))
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestBcastAllRoots(t *testing.T) {
	runBoth(t, func(c *Comm) {
		n := c.Env().Size()
		for root := 0; root < n; root++ {
			var in []float64
			if c.Env().Rank() == root {
				in = contribution(root, 5)
			}
			got := c.Bcast(root, in)
			want := contribution(root, 5)
			if !reflect.DeepEqual(got, want) {
				panic(fmt.Sprintf("bcast root %d at rank %d: got %v", root, c.Env().Rank(), got))
			}
		}
	})
}

func TestGatherAndGatherv(t *testing.T) {
	runBoth(t, func(c *Comm) {
		n := c.Env().Size()
		r := c.Env().Rank()
		for root := 0; root < n; root++ {
			got := c.Gather(root, contribution(r, 3))
			if r == root {
				for j := 0; j < n; j++ {
					if !reflect.DeepEqual(got[j], contribution(j, 3)) {
						panic(fmt.Sprintf("gather root %d block %d = %v", root, j, got[j]))
					}
				}
			} else if got != nil {
				panic("non-root got a gather result")
			}
			gotV := c.Gatherv(root, raggedContribution(r))
			if r == root {
				for j := 0; j < n; j++ {
					if !reflect.DeepEqual(gotV[j], raggedContribution(j)) {
						panic(fmt.Sprintf("gatherv root %d block %d = %v", root, j, gotV[j]))
					}
				}
			}
		}
	})
}

func TestScatterAndScatterv(t *testing.T) {
	runBoth(t, func(c *Comm) {
		n := c.Env().Size()
		r := c.Env().Rank()
		for root := 0; root < n; root++ {
			var segs [][]float64
			if r == root {
				segs = make([][]float64, n)
				for j := range segs {
					segs[j] = contribution(j, 4)
				}
			}
			got := c.Scatter(root, segs)
			if !reflect.DeepEqual(got, contribution(r, 4)) {
				panic(fmt.Sprintf("scatter root %d rank %d = %v", root, r, got))
			}
			if r == root {
				segs = make([][]float64, n)
				for j := range segs {
					segs[j] = raggedContribution(j)
				}
			}
			gotV := c.Scatterv(root, segs)
			if !reflect.DeepEqual(gotV, raggedContribution(r)) {
				panic(fmt.Sprintf("scatterv root %d rank %d = %v", root, r, gotV))
			}
		}
	})
}

func TestAllgatherAndAllgatherv(t *testing.T) {
	runBoth(t, func(c *Comm) {
		n := c.Env().Size()
		r := c.Env().Rank()
		got := c.Allgather(contribution(r, 2))
		for j := 0; j < n; j++ {
			if !reflect.DeepEqual(got[j], contribution(j, 2)) {
				panic(fmt.Sprintf("allgather block %d = %v", j, got[j]))
			}
		}
		gotV := c.Allgatherv(raggedContribution(r))
		for j := 0; j < n; j++ {
			if !reflect.DeepEqual(gotV[j], raggedContribution(j)) {
				panic(fmt.Sprintf("allgatherv block %d = %v", j, gotV[j]))
			}
		}
	})
}

func TestAlltoallAndAlltoallv(t *testing.T) {
	runBoth(t, func(c *Comm) {
		n := c.Env().Size()
		r := c.Env().Rank()
		segs := make([][]float64, n)
		for d := range segs {
			segs[d] = []float64{float64(r*1000 + d)}
		}
		got := c.Alltoall(segs)
		for j := 0; j < n; j++ {
			want := []float64{float64(j*1000 + r)}
			if !reflect.DeepEqual(got[j], want) {
				panic(fmt.Sprintf("alltoall from %d = %v, want %v", j, got[j], want))
			}
		}
		// Ragged: segment for rank d has d%3+1 elements.
		for d := range segs {
			seg := make([]float64, d%3+1)
			for i := range seg {
				seg[i] = float64(r*1000 + d*10 + i)
			}
			segs[d] = seg
		}
		gotV := c.Alltoallv(segs)
		for j := 0; j < n; j++ {
			want := make([]float64, r%3+1)
			for i := range want {
				want[i] = float64(j*1000 + r*10 + i)
			}
			if !reflect.DeepEqual(gotV[j], want) {
				panic(fmt.Sprintf("alltoallv from %d = %v, want %v", j, gotV[j], want))
			}
		}
	})
}

func TestReduceAllreduceOps(t *testing.T) {
	ops := []Op{Sum, Prod, Max, Min}
	runBoth(t, func(c *Comm) {
		n := c.Env().Size()
		r := c.Env().Rank()
		for _, op := range ops {
			in := []float64{float64(r + 1), float64(n - r)}
			want := []float64{op.Identity, op.Identity}
			for j := 0; j < n; j++ {
				op.Combine(want, []float64{float64(j + 1), float64(n - j)})
			}
			for root := 0; root < n; root += max(1, n/3) {
				got := c.Reduce(root, in, op)
				if r == root && !approxEqual(got, want) {
					panic(fmt.Sprintf("reduce(%s) root %d = %v, want %v", op.Name, root, got, want))
				}
			}
			all := c.Allreduce(in, op)
			if !approxEqual(all, want) {
				panic(fmt.Sprintf("allreduce(%s) rank %d = %v, want %v", op.Name, r, all, want))
			}
		}
	})
}

func TestReduceScatter(t *testing.T) {
	runBoth(t, func(c *Comm) {
		n := c.Env().Size()
		r := c.Env().Rank()
		counts := make([]int, n)
		total := 0
		for i := range counts {
			counts[i] = i%3 + 1
			total += counts[i]
		}
		in := make([]float64, total)
		for i := range in {
			in[i] = float64(r + i)
		}
		got := c.ReduceScatter(in, counts, Sum)
		off := 0
		for i := 0; i < r; i++ {
			off += counts[i]
		}
		for i, v := range got {
			want := 0.0
			for j := 0; j < n; j++ {
				want += float64(j + off + i)
			}
			if math.Abs(v-want) > 1e-9 {
				panic(fmt.Sprintf("reducescatter rank %d elem %d = %v, want %v", r, i, v, want))
			}
		}
		if len(got) != counts[r] {
			panic("reducescatter wrong count")
		}
	})
}

func TestScan(t *testing.T) {
	runBoth(t, func(c *Comm) {
		r := c.Env().Rank()
		in := []float64{float64(r + 1), 2}
		got := c.Scan(in, Sum)
		wantA := 0.0
		for j := 0; j <= r; j++ {
			wantA += float64(j + 1)
		}
		if math.Abs(got[0]-wantA) > 1e-9 || math.Abs(got[1]-float64(2*(r+1))) > 1e-9 {
			panic(fmt.Sprintf("scan rank %d = %v", r, got))
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	runBoth(t, func(c *Comm) {
		e := c.Env()
		e.Compute(sim.Time(e.Rank()) * sim.Millisecond)
		arrived := e.Now()
		c.Barrier()
		// The last rank arrives at (n-1) ms; nobody may leave earlier.
		if e.Now() < sim.Time(e.Size()-1)*sim.Millisecond {
			panic(fmt.Sprintf("rank %d left barrier at %v after arriving at %v", e.Rank(), e.Now(), arrived))
		}
	})
}

// TestStylesAgreeProperty: for random vectors, flat and hierarchical
// allreduce produce identical results.
func TestStylesAgreeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			raw = []float64{1}
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = float64(i)
			}
		}
		results := make([][]float64, 2)
		for si, style := range styles {
			style := style
			si := si
			_, err := par.Run(topology.DAS(), network.DefaultParams(), 2, func(e *par.Env) {
				c := New(e, style)
				in := make([]float64, len(raw))
				for i, v := range raw {
					in[i] = v + float64(e.Rank())
				}
				out := c.Allreduce(in, Max)
				if e.Rank() == 0 {
					results[si] = out
				}
			})
			if err != nil {
				return false
			}
		}
		return reflect.DeepEqual(results[0], results[1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMagPIeFasterOnWAN reproduces the Section 6 claim qualitatively: on a
// 10 ms / 1 MByte/s wide area, hierarchical collectives beat flat ones.
func TestMagPIeFasterOnWAN(t *testing.T) {
	params := network.DefaultParams().WithWAN(10*sim.Millisecond, 1e6)
	elapsed := func(style Style) sim.Time {
		res, err := par.Run(topology.DAS(), params, 3, func(e *par.Env) {
			c := New(e, style)
			data := contribution(e.Rank(), 256)
			for i := 0; i < 4; i++ {
				c.Bcast(0, data)
				c.Reduce(0, data, Sum)
				c.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	flat, hier := elapsed(Flat), elapsed(Hierarchical)
	if hier >= flat {
		t.Errorf("hierarchical (%v) should beat flat (%v) on the wide area", hier, flat)
	}
	if float64(flat)/float64(hier) < 1.5 {
		t.Errorf("expected a clear win, got %.2fx", float64(flat)/float64(hier))
	}
}

// TestMagPIeSingleWANCrossing: in a hierarchical bcast, each wide-area link
// carries the payload exactly once.
func TestMagPIeSingleWANCrossing(t *testing.T) {
	const vecLen = 1000
	res, err := par.Run(topology.DAS(), network.DefaultParams(), 3, func(e *par.Env) {
		c := New(e, Hierarchical)
		var in []float64
		if e.Rank() == 0 {
			in = contribution(0, vecLen)
		}
		c.Bcast(0, in)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WAN.Messages != 3 {
		t.Errorf("WAN messages = %d, want 3 (one per remote cluster)", res.WAN.Messages)
	}
	wantBytes := int64(3) * vecBytes(vecLen)
	if res.WAN.Bytes != wantBytes {
		t.Errorf("WAN bytes = %d, want %d", res.WAN.Bytes, wantBytes)
	}
}

// TestFlatBcastCrossesWANRepeatedly documents the flat tree's pathology the
// paper and MagPIe point out: the binomial tree straddles clusters, so the
// payload crosses wide-area links more often than necessary. (With root 0
// on 4 power-of-two clusters the binomial subtrees happen to align with the
// clusters, so the test uses a rotated root, where the alignment is lost.)
func TestFlatBcastCrossesWANRepeatedly(t *testing.T) {
	const vecLen = 1000
	const root = 5
	res, err := par.Run(topology.DAS(), network.DefaultParams(), 3, func(e *par.Env) {
		c := New(e, Flat)
		var in []float64
		if e.Rank() == root {
			in = contribution(root, vecLen)
		}
		c.Bcast(root, in)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WAN.Messages <= 3 {
		t.Errorf("flat bcast WAN messages = %d; expected more than the optimal 3", res.WAN.Messages)
	}
	// Flat gather is worse still: every non-root rank in a remote cluster
	// sends its own wide-area message.
	res2, err := par.Run(topology.DAS(), network.DefaultParams(), 3, func(e *par.Env) {
		New(e, Flat).Gather(0, contribution(e.Rank(), 10))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.WAN.Messages != 24 {
		t.Errorf("flat gather WAN messages = %d, want 24", res2.WAN.Messages)
	}
}

func TestNonUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged Alltoall should panic")
		}
	}()
	checkUniform([][]float64{{1}, {1, 2}}, "Alltoall")
}

func TestOpNamesComplete(t *testing.T) {
	if len(OpNames) != 14 {
		t.Errorf("MPI-1 defines 14 collectives; OpNames has %d", len(OpNames))
	}
}

func TestBcastSegmentedCorrect(t *testing.T) {
	runBoth(t, func(c *Comm) {
		for _, segs := range []int{1, 3, 8, 100} {
			var in []float64
			if c.Env().Rank() == 2 {
				in = contribution(2, 37)
			}
			got := c.BcastSegmented(2, in, segs)
			if !reflect.DeepEqual(got, contribution(2, 37)) {
				panic(fmt.Sprintf("segmented bcast (%d segs) = %v", segs, got))
			}
		}
		// Empty vector edge case.
		if got := c.BcastSegmented(0, nil, 4); got != nil {
			panic("empty bcast should be nil")
		}
	})
}

func TestSegmentationPipelinesDeepTrees(t *testing.T) {
	// On a flat binomial tree over many clusters with a large payload,
	// segmentation amortizes the per-hop transmission time.
	params := network.DefaultParams().WithWAN(sim.Millisecond, 0.5e6)
	elapsed := func(segs int) sim.Time {
		res, err := par.Run(topology.MustUniform(8, 4), params, 3, func(e *par.Env) {
			c := New(e, Flat)
			var in []float64
			if e.Rank() == 0 {
				in = contribution(0, 20000) // 160 KB
			}
			c.BcastSegmented(0, in, segs)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	whole, segmented := elapsed(1), elapsed(16)
	if segmented >= whole {
		t.Errorf("segmentation should pipeline: %v vs %v", segmented, whole)
	}
	if float64(whole)/float64(segmented) < 1.3 {
		t.Errorf("expected a clear pipelining win: %v vs %v", whole, segmented)
	}
}

func TestBcastSegmentedBadArgs(t *testing.T) {
	_, err := par.Run(topology.SingleCluster(1), network.DefaultParams(), 1, func(e *par.Env) {
		defer func() {
			if recover() == nil {
				t.Error("zero segments should panic")
			}
		}()
		New(e, Flat).BcastSegmented(0, []float64{1}, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}
