package collective

import "math"

// Op is an associative, commutative reduction operator over float64
// vectors, as used by Reduce, Allreduce, ReduceScatter and Scan.
type Op struct {
	// Name identifies the operator in output and errors.
	Name string
	// Combine folds src into dst element-wise; the slices have equal length.
	Combine func(dst, src []float64)
	// Identity is the operator's neutral element.
	Identity float64
}

// Built-in reduction operators.
var (
	// Sum adds element-wise.
	Sum = Op{
		Name: "sum",
		Combine: func(dst, src []float64) {
			for i := range dst {
				dst[i] += src[i]
			}
		},
		Identity: 0,
	}
	// Prod multiplies element-wise.
	Prod = Op{
		Name: "prod",
		Combine: func(dst, src []float64) {
			for i := range dst {
				dst[i] *= src[i]
			}
		},
		Identity: 1,
	}
	// Max takes the element-wise maximum.
	Max = Op{
		Name: "max",
		Combine: func(dst, src []float64) {
			for i := range dst {
				if src[i] > dst[i] {
					dst[i] = src[i]
				}
			}
		},
		Identity: negInf,
	}
	// Min takes the element-wise minimum.
	Min = Op{
		Name: "min",
		Combine: func(dst, src []float64) {
			for i := range dst {
				if src[i] < dst[i] {
					dst[i] = src[i]
				}
			}
		},
		Identity: posInf,
	}
)

var (
	posInf = math.Inf(1)
	negInf = math.Inf(-1)
)

// clone copies a vector; reductions must not alias caller buffers.
func clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// concat flattens a set of segments into one vector.
func concat(segs [][]float64) []float64 {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	out := make([]float64, 0, n)
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

// split cuts v into segments of the given lengths. It panics if the lengths
// do not sum to len(v), which would indicate a protocol bug.
func split(v []float64, lens []int) [][]float64 {
	out := make([][]float64, len(lens))
	off := 0
	for i, n := range lens {
		out[i] = v[off : off+n : off+n]
		off += n
	}
	if off != len(v) {
		panic("collective: split length mismatch")
	}
	return out
}
