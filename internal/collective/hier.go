package collective

import "twolayer/internal/par"

// The hierarchical algorithm family, modelled on MagPIe: collectives are
// split into an intra-cluster part over the fast network and an
// inter-cluster part in which every data item crosses each wide-area link
// at most once, through one designated coordinator per cluster.

// coord returns the coordinator of cluster cl for an operation rooted at
// root: the root itself acts as its own cluster's coordinator.
func (c *Comm) coord(cl, root int) int {
	if c.e.Topology().ClusterOf(root) == cl {
		return root
	}
	return c.e.Coordinator(cl)
}

// myCoord returns the calling rank's cluster coordinator for the operation.
func (c *Comm) myCoord(root int) int { return c.coord(c.e.Cluster(), root) }

// intraBcast broadcasts within the caller's cluster over a binomial tree of
// cluster-local indices rooted at the given global rank (which must be in
// the cluster).
func (c *Comm) intraBcast(tag par.Tag, localRoot int, data []float64) []float64 {
	e := c.e
	peers := e.ClusterPeers()
	n := len(peers)
	first := peers[0]
	vr := vrank(e.Rank()-first, localRoot-first, n)
	lowbit := binomialLowbit(vr, n)
	if vr != 0 {
		m := e.RecvFrom(first+rrank(vr-lowbit, localRoot-first, n), tag)
		data = m.Data.([]float64)
	}
	for mask := lowbit >> 1; mask >= 1; mask >>= 1 {
		if vr+mask < n {
			e.Send(first+rrank(vr+mask, localRoot-first, n), tag, data, vecBytes(len(data)))
		}
	}
	return data
}

// intraReduce combines vectors up a binomial tree within the cluster to the
// given local root; returns the combined vector there and nil elsewhere.
func (c *Comm) intraReduce(tag par.Tag, localRoot int, data []float64, op Op) []float64 {
	e := c.e
	peers := e.ClusterPeers()
	n := len(peers)
	first := peers[0]
	vr := vrank(e.Rank()-first, localRoot-first, n)
	lowbit := binomialLowbit(vr, n)
	acc := clone(data)
	for mask := 1; mask < lowbit && vr+mask < n; mask <<= 1 {
		m := e.RecvFrom(first+rrank(vr+mask, localRoot-first, n), tag)
		child := m.Data.([]float64)
		e.ComputeUnits(int64(len(child)), combineCostPerElem)
		op.Combine(acc, child)
	}
	if vr != 0 {
		e.Send(first+rrank(vr-lowbit, localRoot-first, n), tag, acc, vecBytes(len(acc)))
		return nil
	}
	return acc
}

// hierBcast: root sends once to each remote cluster's coordinator over the
// wide area, then each coordinator broadcasts locally.
func (c *Comm) hierBcast(tag par.Tag, root int, data []float64) []float64 {
	e := c.e
	wan, local := phase(tag, 0), phase(tag, 1)
	mc := c.myCoord(root)
	if e.Rank() == root {
		for cl := 0; cl < e.Clusters(); cl++ {
			if cl == e.Cluster() {
				continue
			}
			e.Send(c.coord(cl, root), wan, data, vecBytes(len(data)))
		}
	} else if e.Rank() == mc {
		data = e.RecvFrom(root, wan).Data.([]float64)
	}
	return c.intraBcast(local, mc, data)
}

// hierReduce: reduce within each cluster to its coordinator, then each
// remote coordinator sends one partial result to the root over the wide
// area.
func (c *Comm) hierReduce(tag par.Tag, root int, data []float64, op Op) []float64 {
	e := c.e
	local, wan := phase(tag, 0), phase(tag, 1)
	mc := c.myCoord(root)
	partial := c.intraReduce(local, mc, data, op)
	if e.Rank() != mc {
		return nil
	}
	if e.Rank() != root {
		e.Send(root, wan, partial, vecBytes(len(partial)))
		return nil
	}
	acc := partial
	for cl := 0; cl < e.Clusters(); cl++ {
		if cl == e.Cluster() {
			continue
		}
		m := e.RecvFrom(c.coord(cl, root), wan)
		part := m.Data.([]float64)
		e.ComputeUnits(int64(len(part)), combineCostPerElem)
		op.Combine(acc, part)
	}
	return acc
}

// hierGather: cluster members send to their coordinator over the fast
// network; each remote coordinator forwards its cluster's blocks to the
// root in a single combined wide-area message.
func (c *Comm) hierGather(tag par.Tag, root int, data []float64) [][]float64 {
	e := c.e
	local, wan := phase(tag, 0), phase(tag, 1)
	mc := c.myCoord(root)
	n := e.Size()

	if e.Rank() != mc {
		e.Send(mc, local, data, vecBytes(len(data)))
		return nil
	}
	// Coordinator: collect the cluster's blocks.
	blocks := make(map[int][]float64, len(e.ClusterPeers()))
	blocks[e.Rank()] = data
	for range e.ClusterPeers() {
		if len(blocks) == len(e.ClusterPeers()) {
			break
		}
		m := e.Recv(local)
		blocks[m.From] = m.Data.([]float64)
	}
	if e.Rank() != root {
		// Forward the whole cluster's data in one wide-area message.
		batch := make([]ownedBlock, 0, len(blocks))
		total := 0
		for _, r := range e.ClusterPeers() {
			batch = append(batch, ownedBlock{r, blocks[r]})
			total += len(blocks[r])
		}
		e.Send(root, wan, batch, vecBytes(total))
		return nil
	}
	// Root: own cluster's blocks plus one batch per remote cluster.
	out := make([][]float64, n)
	for r, b := range blocks {
		out[r] = b
	}
	for cl := 0; cl < e.Clusters(); cl++ {
		if cl == e.Cluster() {
			continue
		}
		m := e.RecvFrom(c.coord(cl, root), wan)
		for _, b := range m.Data.([]ownedBlock) {
			out[b.owner] = b.data
		}
	}
	return out
}

// hierScatter: the root sends each remote cluster's segments to its
// coordinator as one combined wide-area message; coordinators distribute
// locally.
func (c *Comm) hierScatter(tag par.Tag, root int, segs [][]float64) []float64 {
	e := c.e
	wan, local := phase(tag, 0), phase(tag, 1)
	mc := c.myCoord(root)
	topo := e.Topology()

	if e.Rank() == root {
		for cl := 0; cl < e.Clusters(); cl++ {
			if cl == e.Cluster() {
				continue
			}
			batch := make([]ownedBlock, 0, topo.ClusterSize(cl))
			total := 0
			for _, r := range topo.RanksIn(cl) {
				batch = append(batch, ownedBlock{r, segs[r]})
				total += len(segs[r])
			}
			e.Send(c.coord(cl, root), wan, batch, vecBytes(total))
		}
		for _, r := range e.ClusterPeers() {
			if r == root {
				continue
			}
			e.Send(r, local, segs[r], vecBytes(len(segs[r])))
		}
		return segs[root]
	}
	if e.Rank() == mc {
		// Coordinator of a remote cluster: unpack and distribute.
		m := e.RecvFrom(root, wan)
		var own []float64
		for _, b := range m.Data.([]ownedBlock) {
			if b.owner == e.Rank() {
				own = b.data
				continue
			}
			e.Send(b.owner, local, b.data, vecBytes(len(b.data)))
		}
		return own
	}
	// Plain member: segment arrives from the root (same cluster) or from
	// the coordinator (remote cluster).
	src := root
	if !e.SameCluster(root) {
		src = mc
	}
	return e.RecvFrom(src, local).Data.([]float64)
}

// hierAlltoall: intra-cluster segments travel directly; for each remote
// cluster, a sender combines all segments destined there into one wide-area
// message to that cluster's coordinator, which redistributes locally. Every
// byte crosses the wide area exactly once, and the number of wide-area
// messages per cluster pair drops from |src|*|dst| to |src|.
func (c *Comm) hierAlltoall(tag par.Tag, segs [][]float64) [][]float64 {
	e := c.e
	direct, wan, fwd := phase(tag, 0), phase(tag, 1), phase(tag, 2)
	topo := e.Topology()
	n := e.Size()
	r := e.Rank()
	out := make([][]float64, n)
	out[r] = segs[r]

	// Sends: direct within the cluster, combined per remote cluster.
	for _, p := range e.ClusterPeers() {
		if p == r {
			continue
		}
		e.Send(p, direct, ownedBlock{r, segs[p]}, vecBytes(len(segs[p])))
	}
	for cl := 0; cl < e.Clusters(); cl++ {
		if cl == e.Cluster() {
			continue
		}
		members := topo.RanksIn(cl)
		batch := make([]ownedBlock, 0, len(members))
		total := 0
		for _, d := range members {
			batch = append(batch, ownedBlock{d, segs[d]})
			total += len(segs[d])
		}
		e.Send(topo.FirstRank(cl), wan, forwardBatch{src: r, blocks: batch}, vecBytes(total))
	}

	// Receives. All sends above are asynchronous, so the phases below can
	// run in a fixed order on every rank without deadlock. The coordinator
	// unpacks wide-area batches first so its forwards overlap with the
	// direct intra-cluster exchanges still in flight.
	expectFwd := n - len(e.ClusterPeers()) // one segment from every remote rank
	if r == topo.FirstRank(e.Cluster()) {
		for i := 0; i < n-len(e.ClusterPeers()); i++ { // one batch per remote rank
			fb := e.Recv(wan).Data.(forwardBatch)
			for _, b := range fb.blocks {
				if b.owner == r {
					out[fb.src] = b.data
					expectFwd--
					continue
				}
				e.Send(b.owner, fwd, ownedBlock{fb.src, b.data}, vecBytes(len(b.data)))
			}
		}
	}
	for i := 0; i < len(e.ClusterPeers())-1; i++ {
		b := e.Recv(direct).Data.(ownedBlock)
		out[b.owner] = b.data
	}
	for ; expectFwd > 0; expectFwd-- {
		b := e.Recv(fwd).Data.(ownedBlock)
		out[b.owner] = b.data
	}
	return out
}

// forwardBatch carries one sender's segments for every member of a cluster.
type forwardBatch struct {
	src    int
	blocks []ownedBlock
}

// hierScan: each cluster scans locally, coordinators chain cluster totals
// across the wide area (each total crosses each link once), then every rank
// folds its cluster's offset into its local prefix.
func (c *Comm) hierScan(tag par.Tag, data []float64, op Op) []float64 {
	e := c.e
	local, chainT, offT := phase(tag, 0), phase(tag, 1), phase(tag, 2)
	peers := e.ClusterPeers()
	r := e.Rank()
	cl := e.Cluster()
	first := peers[0]
	last := peers[len(peers)-1]

	// Intra-cluster linear scan in rank order.
	acc := clone(data)
	if r != first {
		prev := e.RecvFrom(r-1, local).Data.([]float64)
		e.ComputeUnits(int64(len(prev)), combineCostPerElem)
		op.Combine(acc, prev)
	}
	if r != last {
		e.Send(r+1, local, acc, vecBytes(len(acc)))
	}

	// The last rank of the cluster holds the cluster total; it chains the
	// running inter-cluster prefix to the next cluster's last rank.
	topo := e.Topology()
	var offset []float64
	if r == last {
		var runningPrefix []float64 // exclusive prefix over earlier clusters
		if cl > 0 {
			prevLast := topo.FirstRank(cl-1) + topo.ClusterSize(cl-1) - 1
			runningPrefix = e.RecvFrom(prevLast, chainT).Data.([]float64)
		}
		if cl+1 < e.Clusters() {
			total := clone(acc) // local total already includes cluster scan
			if runningPrefix != nil {
				e.ComputeUnits(int64(len(total)), combineCostPerElem)
				op.Combine(total, runningPrefix)
			}
			nextLast := topo.FirstRank(cl+1) + topo.ClusterSize(cl+1) - 1
			e.Send(nextLast, chainT, total, vecBytes(len(total)))
		}
		offset = runningPrefix
		// Distribute the cluster offset to local peers.
		for _, p := range peers {
			if p == r {
				continue
			}
			e.Send(p, offT, offset, vecBytes(len(offset)))
		}
	} else {
		offset = e.RecvFrom(last, offT).Data.([]float64)
	}
	if offset != nil {
		e.ComputeUnits(int64(len(offset)), combineCostPerElem)
		op.Combine(acc, offset)
	}
	return acc
}
