// Package wantopo models the wide-area layer of the two-layer machine as an
// explicit graph instead of the paper's implicit clique. The paper's testbed
// fully connects its four clusters, so every cross-cluster message takes
// exactly one wide-area hop; real wide-area fabrics — the 3D tori of APENet,
// the circulant and minimal-mean-path-length graphs of Deng, Huang et al.
// (see PAPERS.md) — are sparse, and a message may have to be forwarded
// through intermediate gateways. This package provides deterministic
// generators for such graphs, all-pairs shortest-path routes with
// deterministic tie-breaking, and the derived metrics (diameter, mean path
// length, bisection link count) the topology study reports.
//
// A WAN value is immutable after construction and safe to share between
// concurrent simulations; the network layer holds per-link mutable state
// (FIFO occupancy, traffic counters) itself, indexed by this package's edge
// ids.
//
// Graph nodes 0..Clusters-1 are the cluster gateways. Generators may add
// relay nodes (pure switches that host no processors — the fat tree's pod
// and core switches) numbered Clusters..Nodes-1; routes always start and
// end at cluster nodes but may pass through relays.
package wantopo

import (
	"fmt"
	"sort"
)

// Edge is one directed wide-area link. Latency and bandwidth are expressed
// as scale factors applied to the experiment's swept wide-area parameters
// (network.Params.WANLatency / WANBandwidth), so a sweep over the paper's
// axes moves every link together while preserving the graph's relative
// heterogeneity. Generated graphs use scale 1 except where noted (the fat
// tree's upper links are proportionally fatter).
type Edge struct {
	Src, Dst int
	// LatScale multiplies the base wide-area latency on this link.
	LatScale float64
	// BWScale multiplies the base wide-area bandwidth on this link.
	BWScale float64
}

// WAN is an immutable wide-area graph with precomputed routes and metrics.
// Build one with a generator (Clique, Ring, Torus, Circulant, FatTree,
// MinMPL) or Parse.
type WAN struct {
	spec     string
	clusters int
	nodes    int

	// edges are sorted by (Src, Dst); rowStart[v]..rowStart[v+1] delimits
	// node v's outgoing edges, so an edge id minus its row start is the
	// offset the network layer uses for lazily allocated per-row link state.
	edges    []Edge
	rowStart []int32

	// routes[routeOff[s*clusters+d] : routeOff[s*clusters+d+1]] is the edge
	// sequence of the chosen shortest path from cluster s to cluster d
	// (empty for s == d).
	routes   []int32
	routeOff []int32

	diameter    int
	maxHops     int
	meanPath    float64
	bisection   int
	minLatScale float64
}

// Spec returns the canonical textual form of the graph ("clique",
// "torus:4x4", "circulant:1,5", ...), the form Parse accepts and the
// topology study reports.
func (w *WAN) Spec() string { return w.spec }

// CacheKey returns the graph's contribution to a run's cache identity: ""
// for the default clique — keeping every pre-topology cache entry and golden
// byte-identical — and the canonical spec otherwise.
func (w *WAN) CacheKey() string {
	if w == nil || w.IsClique() {
		return ""
	}
	return w.spec
}

// IsClique reports whether the graph is the fully connected mesh the paper
// models (every cross-cluster route a single hop on a unit-scale link).
func (w *WAN) IsClique() bool { return w.spec == "clique" }

// Clusters returns the number of cluster (gateway) nodes.
func (w *WAN) Clusters() int { return w.clusters }

// Nodes returns the total node count including relay switches.
func (w *WAN) Nodes() int { return w.nodes }

// NumEdges returns the number of directed links.
func (w *WAN) NumEdges() int { return len(w.edges) }

// Edge returns the i-th directed link.
func (w *WAN) Edge(i int) Edge { return w.edges[i] }

// RowStart returns the first edge id whose source is node v; edge ids
// [RowStart(v), RowStart(v+1)) all leave v, sorted by destination.
func (w *WAN) RowStart(v int) int { return int(w.rowStart[v]) }

// OutDegree returns the number of links leaving node v.
func (w *WAN) OutDegree(v int) int { return int(w.rowStart[v+1] - w.rowStart[v]) }

// EdgeBetween returns the id of the directed link a->b, if one exists.
func (w *WAN) EdgeBetween(a, b int) (int, bool) {
	lo, hi := int(w.rowStart[a]), int(w.rowStart[a+1])
	row := w.edges[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return row[i].Dst >= b })
	if i < len(row) && row[i].Dst == b {
		return lo + i, true
	}
	return 0, false
}

// Route returns the edge ids of the chosen path from cluster s to cluster
// d, in traversal order; empty when s == d. The returned slice aliases the
// WAN's internal storage and must not be modified.
func (w *WAN) Route(s, d int) []int32 {
	i := s*w.clusters + d
	return w.routes[w.routeOff[i]:w.routeOff[i+1]]
}

// Hops returns the hop count of the chosen route from s to d.
func (w *WAN) Hops(s, d int) int {
	i := s*w.clusters + d
	return int(w.routeOff[i+1] - w.routeOff[i])
}

// Diameter returns the maximum hop count over all chosen cluster-to-cluster
// routes (1 on a clique).
func (w *WAN) Diameter() int { return w.diameter }

// MaxHops is Diameter under its routing-layer name: the network defers
// wide-area link booking to window barriers exactly when MaxHops exceeds 1.
func (w *WAN) MaxHops() int { return w.maxHops }

// MeanPathLength returns the average hop count over all ordered distinct
// cluster pairs — the metric Deng, Huang et al. minimize.
func (w *WAN) MeanPathLength() float64 { return w.meanPath }

// BisectionLinks counts the directed links crossing the balanced bipartition
// of the clusters (ids below ceil(C/2) versus the rest; relay nodes side
// with their lowest-numbered cluster neighbor). On the paper's clique this
// grows quadratically with the cluster count — the effect behind the "more,
// smaller clusters" result — while sparse graphs grow it much more slowly.
func (w *WAN) BisectionLinks() int { return w.bisection }

// MinLatencyScale returns the smallest latency scale over all links: the
// factor the conservative PDES lookahead applies to the base wide-area
// latency (every hop detains a message at least this long).
func (w *WAN) MinLatencyScale() float64 { return w.minLatScale }

// HopHistogram returns, indexed by hop count, how many ordered cluster
// routes have that length (index 0 counts nothing; self-routes are
// excluded). cmd/topo renders it.
func (w *WAN) HopHistogram() []int {
	h := make([]int, w.diameter+1)
	for s := 0; s < w.clusters; s++ {
		for d := 0; d < w.clusters; d++ {
			if s != d {
				h[w.Hops(s, d)]++
			}
		}
	}
	return h
}

// build assembles a WAN from a generator's edge set: it sorts and validates
// the edges, computes deterministic all-pairs routes, and derives the
// metrics. Every generator funnels through here.
func build(spec string, clusters, nodes int, edges []Edge) (*WAN, error) {
	if clusters < 1 {
		return nil, fmt.Errorf("wantopo: %d clusters", clusters)
	}
	if nodes < clusters {
		return nil, fmt.Errorf("wantopo: %d nodes for %d clusters", nodes, clusters)
	}
	for _, e := range edges {
		if e.Src < 0 || e.Src >= nodes || e.Dst < 0 || e.Dst >= nodes {
			return nil, fmt.Errorf("wantopo: edge %d->%d outside %d nodes", e.Src, e.Dst, nodes)
		}
		if e.Src == e.Dst {
			return nil, fmt.Errorf("wantopo: self-loop on node %d", e.Src)
		}
		if e.LatScale <= 0 || e.BWScale <= 0 {
			return nil, fmt.Errorf("wantopo: edge %d->%d has non-positive scale", e.Src, e.Dst)
		}
	}
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Src != sorted[j].Src {
			return sorted[i].Src < sorted[j].Src
		}
		return sorted[i].Dst < sorted[j].Dst
	})
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Src == sorted[i-1].Src && sorted[i].Dst == sorted[i-1].Dst {
			return nil, fmt.Errorf("wantopo: duplicate edge %d->%d", sorted[i].Src, sorted[i].Dst)
		}
	}
	w := &WAN{spec: spec, clusters: clusters, nodes: nodes, edges: sorted}
	w.rowStart = make([]int32, nodes+1)
	for _, e := range sorted {
		w.rowStart[e.Src+1]++
	}
	for v := 0; v < nodes; v++ {
		w.rowStart[v+1] += w.rowStart[v]
	}
	if err := w.computeRoutes(); err != nil {
		return nil, err
	}
	w.computeMetrics()
	return w, nil
}

// computeRoutes runs a deterministic Dijkstra from every cluster node:
// shortest by summed latency scale, ties broken first by hop count and then
// by settling nodes in ascending id order, with neighbors relaxed in sorted
// edge order. The whole procedure is sequential and input-ordered, so the
// routes are byte-identical across runs and GOMAXPROCS values.
func (w *WAN) computeRoutes() error {
	c, n := w.clusters, w.nodes
	w.routeOff = make([]int32, c*c+1)
	dist := make([]float64, n)
	hops := make([]int32, n)
	prev := make([]int32, n) // edge id entering the node, -1 at the source
	done := make([]bool, n)

	var scratch []int32
	for s := 0; s < c; s++ {
		for v := range dist {
			dist[v] = -1 // unreached
			hops[v] = 0
			prev[v] = -1
			done[v] = false
		}
		dist[s] = 0
		for {
			// Deterministic selection: the unsettled reached node with the
			// smallest (dist, hops, id). O(V) per pick is plenty for the
			// graph sizes the study sweeps (hundreds of clusters).
			u := -1
			for v := 0; v < n; v++ {
				if done[v] || dist[v] < 0 {
					continue
				}
				if u == -1 || dist[v] < dist[u] ||
					(dist[v] == dist[u] && (hops[v] < hops[u] || (hops[v] == hops[u] && v < u))) {
					u = v
				}
			}
			if u == -1 {
				break
			}
			done[u] = true
			for e := int(w.rowStart[u]); e < int(w.rowStart[u+1]); e++ {
				ed := w.edges[e]
				nd := dist[u] + ed.LatScale
				nh := hops[u] + 1
				v := ed.Dst
				if dist[v] < 0 || nd < dist[v] || (nd == dist[v] && nh < hops[v]) {
					dist[v] = nd
					hops[v] = nh
					prev[v] = int32(e)
				}
			}
		}
		for d := 0; d < c; d++ {
			idx := s*c + d
			w.routeOff[idx] = int32(len(w.routes))
			if d == s {
				continue
			}
			if dist[d] < 0 {
				return fmt.Errorf("wantopo: %s: cluster %d unreachable from %d", w.spec, d, s)
			}
			scratch = scratch[:0]
			for v := d; v != s; {
				e := prev[v]
				scratch = append(scratch, e)
				v = w.edges[e].Src
			}
			for i := len(scratch) - 1; i >= 0; i-- {
				w.routes = append(w.routes, scratch[i])
			}
		}
	}
	w.routeOff[c*c] = int32(len(w.routes))
	return nil
}

// computeMetrics derives diameter, mean path length, bisection link count
// and the minimum latency scale from the chosen routes and the edge set.
func (w *WAN) computeMetrics() {
	c := w.clusters
	total, pairs := 0, 0
	for s := 0; s < c; s++ {
		for d := 0; d < c; d++ {
			if s == d {
				continue
			}
			h := w.Hops(s, d)
			if h > w.diameter {
				w.diameter = h
			}
			total += h
			pairs++
		}
	}
	if pairs > 0 {
		w.meanPath = float64(total) / float64(pairs)
	}
	w.maxHops = w.diameter

	// Bisection: clusters split into low/high id halves; a relay node sides
	// with its lowest-numbered cluster neighbor (transitively via relays if
	// it has none — the fat tree's core switch sides with pod switch 0's
	// side). This id-based cut matches the natural axis cut on the
	// generators' row-major numbering.
	side := make([]int8, w.nodes)
	half := (c + 1) / 2
	for v := 0; v < w.nodes; v++ {
		if v < c {
			if v >= half {
				side[v] = 1
			}
		} else {
			side[v] = -1
		}
	}
	for changed := true; changed; {
		changed = false
		for v := c; v < w.nodes; v++ {
			if side[v] >= 0 {
				continue
			}
			best := -1
			for e := int(w.rowStart[v]); e < int(w.rowStart[v+1]); e++ {
				u := w.edges[e].Dst
				if side[u] >= 0 && (best == -1 || u < best) {
					best = u
				}
			}
			if best >= 0 {
				side[v] = side[best]
				changed = true
			}
		}
	}
	for _, e := range w.edges {
		a, b := side[e.Src], side[e.Dst]
		if a >= 0 && b >= 0 && a != b {
			w.bisection++
		}
	}

	w.minLatScale = 1
	for i, e := range w.edges {
		if i == 0 || e.LatScale < w.minLatScale {
			w.minLatScale = e.LatScale
		}
	}
}
