package wantopo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// cliques memoizes the default graph per cluster count: every network
// instance of a sweep shares one immutable clique value instead of
// recomputing C^2 one-hop routes per run.
var cliques sync.Map // int -> *WAN

// Clique returns the paper's fully connected inter-cluster mesh: every
// ordered cluster pair gets its own dedicated unit-scale link, so every
// route is a single hop. This is the default wide-area graph; it is what
// the pre-topology network model hard-coded.
func Clique(clusters int) *WAN {
	if w, ok := cliques.Load(clusters); ok {
		return w.(*WAN)
	}
	edges := make([]Edge, 0, clusters*(clusters-1))
	for s := 0; s < clusters; s++ {
		for d := 0; d < clusters; d++ {
			if s != d {
				edges = append(edges, Edge{Src: s, Dst: d, LatScale: 1, BWScale: 1})
			}
		}
	}
	w, err := build("clique", clusters, clusters, edges)
	if err != nil {
		panic(err) // cliques are valid for every positive cluster count
	}
	actual, _ := cliques.LoadOrStore(clusters, w)
	return actual.(*WAN)
}

// symmetric appends the unit-scale directed edge pair a<->b unless present.
func symmetric(edges []Edge, a, b int) []Edge {
	for _, e := range edges {
		if e.Src == a && e.Dst == b {
			return edges
		}
	}
	return append(edges, Edge{Src: a, Dst: b, LatScale: 1, BWScale: 1},
		Edge{Src: b, Dst: a, LatScale: 1, BWScale: 1})
}

// Ring connects cluster i to its two id-neighbors modulo the cluster count:
// the sparsest connected symmetric graph, the worst case for bisection
// bandwidth (always 4 directed links) and the baseline the
// minimal-mean-path-length search must beat.
func Ring(clusters int) (*WAN, error) {
	if clusters < 2 {
		return nil, fmt.Errorf("wantopo: ring needs at least 2 clusters, got %d", clusters)
	}
	var edges []Edge
	for i := 0; i < clusters; i++ {
		edges = symmetric(edges, i, (i+1)%clusters)
	}
	return build("ring", clusters, clusters, edges)
}

// Torus builds a 2D or 3D torus (the APENet shape) over the given
// dimensions, whose product must equal the cluster count. Clusters are
// numbered row-major; each connects to its ±1 neighbor along every axis,
// wrapping around.
func Torus(dims []int) (*WAN, error) {
	if len(dims) != 2 && len(dims) != 3 {
		return nil, fmt.Errorf("wantopo: torus needs 2 or 3 dimensions, got %d", len(dims))
	}
	clusters := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("wantopo: torus dimension %d", d)
		}
		clusters *= d
	}
	if clusters < 2 {
		return nil, fmt.Errorf("wantopo: torus %v has fewer than 2 clusters", dims)
	}
	// strides for row-major numbering
	stride := make([]int, len(dims))
	stride[len(dims)-1] = 1
	for i := len(dims) - 2; i >= 0; i-- {
		stride[i] = stride[i+1] * dims[i+1]
	}
	coord := func(id, axis int) int { return id / stride[axis] % dims[axis] }
	var edges []Edge
	for id := 0; id < clusters; id++ {
		for axis := range dims {
			if dims[axis] == 1 {
				continue
			}
			c := coord(id, axis)
			up := id + ((c+1)%dims[axis]-c)*stride[axis]
			edges = symmetric(edges, id, up)
		}
	}
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = strconv.Itoa(d)
	}
	return build("torus:"+strings.Join(parts, "x"), clusters, clusters, edges)
}

// Circulant builds the circulant graph C(n; s1, s2, ...): cluster i connects
// to i±s for every offset s — the family Deng, Huang et al. search for
// minimal mean path length. Offsets must be distinct and within [1, n/2];
// the graph must come out connected (gcd of the offsets and n equal 1).
func Circulant(clusters int, offsets []int) (*WAN, error) {
	if clusters < 2 {
		return nil, fmt.Errorf("wantopo: circulant needs at least 2 clusters, got %d", clusters)
	}
	if len(offsets) == 0 {
		return nil, fmt.Errorf("wantopo: circulant needs at least one offset")
	}
	seen := map[int]bool{}
	g := clusters
	for _, s := range offsets {
		if s < 1 || s > clusters/2 {
			return nil, fmt.Errorf("wantopo: circulant offset %d outside [1, %d]", s, clusters/2)
		}
		if seen[s] {
			return nil, fmt.Errorf("wantopo: duplicate circulant offset %d", s)
		}
		seen[s] = true
		g = gcd(g, s)
	}
	if g != 1 {
		return nil, fmt.Errorf("wantopo: circulant %v on %d clusters is disconnected (gcd %d)", offsets, clusters, g)
	}
	sorted := append([]int(nil), offsets...)
	sort.Ints(sorted)
	var edges []Edge
	for i := 0; i < clusters; i++ {
		for _, s := range sorted {
			edges = symmetric(edges, i, (i+s)%clusters)
		}
	}
	parts := make([]string, len(sorted))
	for i, s := range sorted {
		parts[i] = strconv.Itoa(s)
	}
	return build("circulant:"+strings.Join(parts, ","), clusters, clusters, edges)
}

// FatTree builds a two-level switched tree: clusters are grouped into pods
// of the given size, each pod hangs off a relay switch, and the pod switches
// hang off one core switch over proportionally fatter links (bandwidth scale
// = pod size), the classic thin-tree remedy. Cross-pod routes take four
// hops: cluster -> pod switch -> core -> pod switch -> cluster.
func FatTree(clusters, pod int) (*WAN, error) {
	if clusters < 2 {
		return nil, fmt.Errorf("wantopo: fat tree needs at least 2 clusters, got %d", clusters)
	}
	if pod < 1 || clusters%pod != 0 {
		return nil, fmt.Errorf("wantopo: pod size %d must divide the cluster count %d", pod, clusters)
	}
	pods := clusters / pod
	var edges []Edge
	if pods == 1 {
		// One pod: a single switch, no core level.
		sw := clusters
		for i := 0; i < clusters; i++ {
			edges = symmetric(edges, i, sw)
		}
		return build(fmt.Sprintf("fattree:%d", pod), clusters, clusters+1, edges)
	}
	core := clusters + pods
	for p := 0; p < pods; p++ {
		sw := clusters + p
		for i := 0; i < pod; i++ {
			edges = symmetric(edges, p*pod+i, sw)
		}
		edges = append(edges,
			Edge{Src: sw, Dst: core, LatScale: 1, BWScale: float64(pod)},
			Edge{Src: core, Dst: sw, LatScale: 1, BWScale: float64(pod)})
	}
	return build(fmt.Sprintf("fattree:%d", pod), clusters, clusters+pods+1, edges)
}

// MinMPL searches for a circulant offset set of the given even degree with
// small mean path length, following Deng et al.'s observation that minimal-
// MPL regular graphs make the best cluster fabrics. The search is a seeded
// deterministic hill climb: starting from offset 1 plus evenly spread seeds,
// it repeatedly proposes replacing one offset with a pseudo-random
// candidate and keeps strict improvements. The result is reproducible for a
// given (clusters, degree, seed) and always contains offset 1 (guaranteeing
// connectivity).
func MinMPL(clusters, degree int, seed int64) (*WAN, error) {
	if clusters < 2 {
		return nil, fmt.Errorf("wantopo: minmpl needs at least 2 clusters, got %d", clusters)
	}
	if degree < 2 || degree%2 != 0 {
		return nil, fmt.Errorf("wantopo: minmpl degree must be a positive even number, got %d", degree)
	}
	k := degree / 2
	maxOff := clusters / 2
	if k > maxOff {
		k = maxOff // every possible offset in use: the search is trivial
	}
	offsets := make([]int, 0, k)
	offsets = append(offsets, 1)
	for len(offsets) < k {
		// Spread the initial offsets evenly; the climb refines them.
		cand := 1 + len(offsets)*maxOff/k
		for contains(offsets, cand) || cand > maxOff {
			cand--
		}
		if cand < 1 {
			break
		}
		offsets = append(offsets, cand)
	}
	best := circulantMPL(clusters, offsets)
	rng := uint64(seed)*2654435769 + 0x9e3779b97f4a7c15
	next := func(n int) int {
		// splitmix64: deterministic across platforms, no shared state.
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return int(z % uint64(n))
	}
	if k > 1 {
		for iter := 0; iter < 64*k; iter++ {
			i := 1 + next(k-1) // never replace offset 1 (keeps connectivity)
			cand := 2 + next(maxOff-1)
			if contains(offsets, cand) {
				continue
			}
			old := offsets[i]
			offsets[i] = cand
			if mpl := circulantMPL(clusters, offsets); mpl < best {
				best = mpl
			} else {
				offsets[i] = old
			}
		}
	}
	sort.Ints(offsets)
	w, err := Circulant(clusters, offsets)
	if err != nil {
		return nil, err
	}
	// Re-label with the search spec so the cache key records intent (the
	// found offsets are a deterministic function of it).
	w2 := *w
	w2.spec = fmt.Sprintf("minmpl:%d:%d", degree, seed)
	return &w2, nil
}

// circulantMPL computes the mean shortest-path hop length of C(n; offsets)
// by BFS from node 0 — circulant graphs are vertex-transitive, so one
// source suffices. Used only by the MinMPL search loop.
func circulantMPL(n int, offsets []int) float64 {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	total, reached := 0, 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, s := range offsets {
			for _, v := range []int{(u + s) % n, (u - s + n) % n} {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					total += dist[v]
					reached++
					queue = append(queue, v)
				}
			}
		}
	}
	if reached < n-1 {
		return math.Inf(1) // disconnected candidates never win
	}
	return float64(total) / float64(n-1)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Parse builds the WAN graph named by spec for the given cluster count.
// Accepted forms:
//
//	clique (or "")          the paper's fully connected mesh (default)
//	ring                    bidirectional cycle
//	torus:AxB, torus:AxBxC  explicit torus dimensions (product = clusters)
//	torus2, torus3          torus with auto-factored near-square/cube dims
//	circulant:s1,s2,...     circulant graph with the given offsets
//	circulant               C(n; 1, ~sqrt(n)), the classic two-offset choice
//	fattree:POD             two-level switched tree, pods of POD clusters
//	minmpl:DEGREE[:SEED]    seeded minimal-mean-path-length circulant search
//
// Invalid specs return an error; CLIs map it to exit code 2.
func Parse(spec string, clusters int) (*WAN, error) {
	if clusters < 1 {
		return nil, fmt.Errorf("wantopo: %d clusters", clusters)
	}
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "", "clique":
		if arg != "" {
			return nil, fmt.Errorf("wantopo: clique takes no arguments (got %q)", spec)
		}
		return Clique(clusters), nil
	case "ring":
		if arg != "" {
			return nil, fmt.Errorf("wantopo: ring takes no arguments (got %q)", spec)
		}
		return Ring(clusters)
	case "torus2", "torus3":
		if arg != "" {
			return nil, fmt.Errorf("wantopo: %s takes no arguments (got %q)", name, spec)
		}
		d := 2
		if name == "torus3" {
			d = 3
		}
		return Torus(factorize(clusters, d))
	case "torus":
		var dims []int
		for _, p := range strings.Split(arg, "x") {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("wantopo: bad torus dimensions %q", spec)
			}
			dims = append(dims, v)
		}
		product := 1
		for _, d := range dims {
			product *= d
		}
		if product != clusters {
			return nil, fmt.Errorf("wantopo: torus %q covers %d clusters, machine has %d", spec, product, clusters)
		}
		return Torus(dims)
	case "circulant":
		if arg == "" {
			s := int(math.Round(math.Sqrt(float64(clusters))))
			if s < 2 {
				s = 2
			}
			if s > clusters/2 {
				s = clusters / 2
			}
			if s <= 1 {
				return Circulant(clusters, []int{1})
			}
			return Circulant(clusters, []int{1, s})
		}
		var offsets []int
		for _, p := range strings.Split(arg, ",") {
			v, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("wantopo: bad circulant offsets %q", spec)
			}
			offsets = append(offsets, v)
		}
		return Circulant(clusters, offsets)
	case "fattree":
		pod, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("wantopo: bad fat-tree pod size %q", spec)
		}
		return FatTree(clusters, pod)
	case "minmpl":
		degS, seedS, hasSeed := strings.Cut(arg, ":")
		deg, err := strconv.Atoi(degS)
		if err != nil {
			return nil, fmt.Errorf("wantopo: bad minmpl degree %q", spec)
		}
		var seed int64
		if hasSeed {
			seed, err = strconv.ParseInt(seedS, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("wantopo: bad minmpl seed %q", spec)
			}
		}
		return MinMPL(clusters, deg, seed)
	}
	return nil, fmt.Errorf("wantopo: unknown topology %q (want clique, ring, torus, torus2, torus3, circulant, fattree or minmpl)", spec)
}

// factorize splits n into d factors as close to equal as possible:
// the largest divisor not above the d-th root first, recursively.
func factorize(n, d int) []int {
	if d == 1 {
		return []int{n}
	}
	root := int(math.Round(math.Pow(float64(n), 1/float64(d))))
	best := 1
	for f := root; f >= 1; f-- {
		if n%f == 0 {
			best = f
			break
		}
	}
	// Prefer the factor just above the root when it divides more evenly
	// (e.g. 8 into 2 dims should be 2x4 either way; 12 into 2 -> 3x4).
	for f := root + 1; f <= n; f++ {
		if n%f == 0 {
			if float64(f)/float64(root) < float64(root)/float64(best) {
				best = f
			}
			break
		}
	}
	return append([]int{best}, factorize(n/best, d-1)...)
}
