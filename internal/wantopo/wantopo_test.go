package wantopo

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
)

// referenceDistances is an independent check on the routing layer: plain
// Floyd-Warshall over latency scale, with hop count as secondary metric.
func referenceDistances(w *WAN) ([][]float64, [][]int) {
	n := w.Nodes()
	dist := make([][]float64, n)
	hops := make([][]int, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		hops[i] = make([]int, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = math.Inf(1)
				hops[i][j] = 1 << 30
			}
		}
	}
	for i := 0; i < w.NumEdges(); i++ {
		e := w.Edge(i)
		if e.LatScale < dist[e.Src][e.Dst] {
			dist[e.Src][e.Dst] = e.LatScale
			hops[e.Src][e.Dst] = 1
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				nd := dist[i][k] + dist[k][j]
				nh := hops[i][k] + hops[k][j]
				if nd < dist[i][j] || (nd == dist[i][j] && nh < hops[i][j]) {
					dist[i][j] = nd
					hops[i][j] = nh
				}
			}
		}
	}
	return dist, hops
}

// checkRoutes asserts the structural route invariants on any graph: routes
// chain source to destination without repeating a node, their cost and hop
// count match the independent reference shortest paths, and costs are
// symmetric on the symmetric generators.
func checkRoutes(t *testing.T, w *WAN) {
	t.Helper()
	dist, hops := referenceDistances(w)
	c := w.Clusters()
	cost := func(s, d int) float64 {
		total := 0.0
		at := s
		seen := map[int]bool{s: true}
		for _, id := range w.Route(s, d) {
			e := w.Edge(int(id))
			if e.Src != at {
				t.Fatalf("%s: route %d->%d: edge %d->%d does not chain from %d", w.Spec(), s, d, e.Src, e.Dst, at)
			}
			if seen[e.Dst] {
				t.Fatalf("%s: route %d->%d revisits node %d", w.Spec(), s, d, e.Dst)
			}
			seen[e.Dst] = true
			at = e.Dst
			total += e.LatScale
		}
		if at != d {
			t.Fatalf("%s: route %d->%d ends at %d", w.Spec(), s, d, at)
		}
		return total
	}
	for s := 0; s < c; s++ {
		for d := 0; d < c; d++ {
			if s == d {
				if len(w.Route(s, d)) != 0 {
					t.Fatalf("%s: non-empty self route at %d", w.Spec(), s)
				}
				continue
			}
			got := cost(s, d)
			if math.Abs(got-dist[s][d]) > 1e-9 {
				t.Fatalf("%s: route %d->%d cost %g, shortest is %g", w.Spec(), s, d, got, dist[s][d])
			}
			if w.Hops(s, d) != hops[s][d] {
				t.Fatalf("%s: route %d->%d has %d hops, reference says %d", w.Spec(), s, d, w.Hops(s, d), hops[s][d])
			}
			back := cost(d, s)
			if math.Abs(got-back) > 1e-9 {
				t.Fatalf("%s: asymmetric cost %d<->%d: %g vs %g", w.Spec(), s, d, got, back)
			}
		}
	}
}

func TestCliqueShape(t *testing.T) {
	for _, c := range []int{1, 2, 4, 9} {
		w := Clique(c)
		if w.NumEdges() != c*(c-1) {
			t.Fatalf("clique %d: %d edges", c, w.NumEdges())
		}
		if c > 1 && (w.Diameter() != 1 || w.MeanPathLength() != 1) {
			t.Fatalf("clique %d: diameter %d mpl %g", c, w.Diameter(), w.MeanPathLength())
		}
		if key := w.CacheKey(); key != "" {
			t.Fatalf("clique cache key %q, want empty", key)
		}
		if !w.IsClique() {
			t.Fatal("IsClique false on clique")
		}
		half := (c + 1) / 2
		if want := 2 * half * (c - half); w.BisectionLinks() != want {
			t.Fatalf("clique %d: bisection %d, want %d", c, w.BisectionLinks(), want)
		}
		checkRoutes(t, w)
	}
	if Clique(4) != Clique(4) {
		t.Fatal("clique values not memoized")
	}
}

// ringMPL is the closed form for the mean path length of an n-cycle.
func ringMPL(n int) float64 {
	if n%2 == 0 {
		return float64(n) * float64(n) / (4 * float64(n-1))
	}
	return float64(n+1) / 4
}

func TestRingClosedForms(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 13} {
		w, err := Ring(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Diameter() != n/2 {
			t.Fatalf("ring %d: diameter %d, want %d", n, w.Diameter(), n/2)
		}
		if got, want := w.MeanPathLength(), ringMPL(n); math.Abs(got-want) > 1e-9 {
			t.Fatalf("ring %d: mpl %g, want %g", n, got, want)
		}
		if n > 2 && w.BisectionLinks() != 4 {
			t.Fatalf("ring %d: bisection %d, want 4", n, w.BisectionLinks())
		}
		checkRoutes(t, w)
	}
}

// ringDistSum is the sum of cycle distances from one node to every node.
func ringDistSum(n int) float64 {
	if n%2 == 0 {
		return float64(n*n) / 4
	}
	return float64(n*n-1) / 4
}

func TestTorusClosedForms(t *testing.T) {
	cases := [][]int{{2, 2}, {3, 3}, {4, 4}, {2, 5}, {4, 8}, {2, 3, 4}, {3, 3, 3}}
	for _, dims := range cases {
		w, err := Torus(dims)
		if err != nil {
			t.Fatal(err)
		}
		n := 1
		wantDiam := 0
		distSum := 0.0
		for _, d := range dims {
			n *= d
			wantDiam += d / 2
		}
		for _, d := range dims {
			distSum += float64(n) / float64(d) * ringDistSum(d)
		}
		wantMPL := distSum / float64(n-1)
		if w.Diameter() != wantDiam {
			t.Fatalf("torus %v: diameter %d, want %d", dims, w.Diameter(), wantDiam)
		}
		if math.Abs(w.MeanPathLength()-wantMPL) > 1e-9 {
			t.Fatalf("torus %v: mpl %g, want %g", dims, w.MeanPathLength(), wantMPL)
		}
		checkRoutes(t, w)
	}
	// Row-major id cut of a 4x4 torus: each column crosses the halves at two
	// row boundaries, both directions — 16 directed links.
	w, _ := Torus([]int{4, 4})
	if w.BisectionLinks() != 16 {
		t.Fatalf("4x4 torus bisection %d, want 16", w.BisectionLinks())
	}
}

func TestCirculantPublishedCases(t *testing.T) {
	// Optimal double-loop networks from the circulant literature:
	// C(8; 1,3) has diameter 2, MPL 10/7; C(13; 1,5) is the classic optimal
	// 13-node double loop — diameter 2, every non-zero residue reachable in
	// two steps of ±1, ±5, MPL 20/12.
	cases := []struct {
		n       int
		offsets []int
		diam    int
		mpl     float64
	}{
		{8, []int{1, 3}, 2, 10.0 / 7},
		{13, []int{1, 5}, 2, 20.0 / 12},
	}
	for _, tc := range cases {
		w, err := Circulant(tc.n, tc.offsets)
		if err != nil {
			t.Fatal(err)
		}
		if w.Diameter() != tc.diam {
			t.Fatalf("C(%d;%v): diameter %d, want %d", tc.n, tc.offsets, w.Diameter(), tc.diam)
		}
		if math.Abs(w.MeanPathLength()-tc.mpl) > 1e-9 {
			t.Fatalf("C(%d;%v): mpl %g, want %g", tc.n, tc.offsets, w.MeanPathLength(), tc.mpl)
		}
		checkRoutes(t, w)
	}
	if _, err := Circulant(8, []int{2, 4}); err == nil {
		t.Fatal("disconnected circulant accepted")
	}
	if _, err := Circulant(8, []int{5}); err == nil {
		t.Fatal("offset above n/2 accepted")
	}
}

func TestFatTreeShape(t *testing.T) {
	w, err := FatTree(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Nodes() != 8+2+1 {
		t.Fatalf("fat tree nodes %d, want 11", w.Nodes())
	}
	// Same pod: up to the pod switch and down — 2 hops. Cross pod: 4.
	if h := w.Hops(0, 1); h != 2 {
		t.Fatalf("same-pod hops %d, want 2", h)
	}
	if h := w.Hops(0, 5); h != 4 {
		t.Fatalf("cross-pod hops %d, want 4", h)
	}
	if w.Diameter() != 4 {
		t.Fatalf("fat tree diameter %d, want 4", w.Diameter())
	}
	// Upper links are proportionally fatter.
	id, ok := w.EdgeBetween(8, 10)
	if !ok || w.Edge(id).BWScale != 4 {
		t.Fatalf("pod uplink bandwidth scale wrong (ok=%v)", ok)
	}
	checkRoutes(t, w)
	if _, err := FatTree(8, 3); err == nil {
		t.Fatal("non-dividing pod size accepted")
	}
}

func TestMinMPLSearch(t *testing.T) {
	a, err := MinMPL(24, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinMPL(24, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("MinMPL not deterministic for a fixed seed")
	}
	ring, _ := Ring(24)
	if a.MeanPathLength() >= ring.MeanPathLength() {
		t.Fatalf("minmpl MPL %g not better than ring %g", a.MeanPathLength(), ring.MeanPathLength())
	}
	if a.Spec() != "minmpl:4:1" {
		t.Fatalf("spec %q", a.Spec())
	}
	checkRoutes(t, a)
}

func TestParse(t *testing.T) {
	good := []struct{ spec, canonical string }{
		{"", "clique"},
		{"clique", "clique"},
		{"ring", "ring"},
		{"torus:4x4", "torus:4x4"},
		{"torus2", "torus:4x4"},
		{"torus3", "torus:4x2x2"},
		{"circulant:1,5", "circulant:1,5"},
		{"circulant", "circulant:1,4"},
		{"fattree:4", "fattree:4"},
		{"minmpl:4:7", "minmpl:4:7"},
	}
	for _, tc := range good {
		w, err := Parse(tc.spec, 16)
		if err != nil {
			t.Fatalf("Parse(%q, 16): %v", tc.spec, err)
		}
		if w.Spec() != tc.canonical {
			t.Fatalf("Parse(%q, 16) spec %q, want %q", tc.spec, w.Spec(), tc.canonical)
		}
	}
	bad := []string{"mesh", "torus:3x3", "torus:x", "circulant:0", "circulant:9",
		"fattree:5", "fattree:x", "minmpl:3", "minmpl:x", "clique:2", "ring:4"}
	for _, spec := range bad {
		if _, err := Parse(spec, 16); err == nil {
			t.Fatalf("Parse(%q, 16) accepted", spec)
		}
	}
}

// TestRoutesByteIdentical rebuilds the same graphs under different
// GOMAXPROCS values and from multiple goroutines; every copy must be
// deeply identical — route construction is sequential and input-ordered.
func TestRoutesByteIdentical(t *testing.T) {
	specs := []string{"ring", "torus:4x4", "circulant:1,5", "fattree:4", "minmpl:4:3"}
	build := func(spec string) *WAN {
		w, err := Parse(spec, 16)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, spec := range specs {
		runtime.GOMAXPROCS(1)
		base := build(spec)
		runtime.GOMAXPROCS(4)
		type out struct{ w *WAN }
		ch := make(chan out, 4)
		for i := 0; i < 4; i++ {
			go func() { ch <- out{build(spec)} }()
		}
		for i := 0; i < 4; i++ {
			got := <-ch
			if !reflect.DeepEqual(base, got.w) && fmt.Sprintf("%+v", base) != fmt.Sprintf("%+v", got.w) {
				t.Fatalf("%s: routes differ across GOMAXPROCS/goroutines", spec)
			}
		}
	}
}

func TestHopHistogram(t *testing.T) {
	w, _ := Ring(6)
	// From each of 6 nodes: two 1-hop, two 2-hop, one 3-hop neighbor.
	want := []int{0, 12, 12, 6}
	if got := w.HopHistogram(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ring 6 hop histogram %v, want %v", got, want)
	}
}
