package analytic

import (
	"math"

	"twolayer/internal/network"
	"twolayer/internal/sim"
)

// Eval replays a recorded Graph under candidate network parameters and
// returns the predicted completion time. The replay walks the operation
// stream once — it is already a topological order — carrying the same
// state the simulator's network keeps: each rank's clock, and the freeAt
// horizon of every FIFO link (per-rank NICs, directed cluster-pair
// wide-area pipes, per-cluster gateways). Edge costs are re-derived from
// the candidate parameters with the simulator's exact formulas, so solving
// at the recorded reference point reproduces the recorded elapsed time bit
// for bit. Away from the reference the frozen behaviour (message set,
// matchings, link booking order) is an approximation — conservative for
// contention, since the recorded FIFO chains serialize messages even where
// a slower network would have spread them out.
//
// Concurrency contract: an Eval carries reusable state and must only be
// used from one goroutine at a time — no method, including Solve,
// SolveMatched, SolveBatch and Clone, is safe to call concurrently with
// any other on the same Eval. For concurrent grid solving, create one
// evaluator per goroutine: either independently with NewEval (the graph
// itself is read-only and shared), or with Clone, which also shares the
// prepared replay streams and the current prefix snapshot.
// SolveBatchParallel and SolveMatchedBatch manage such clones internally.
type Eval struct {
	g *Graph

	rankEnd   []sim.Time // per-rank clock
	nicFree   []sim.Time // per-rank outgoing NIC horizon
	gwFree    []sim.Time // per-cluster gateway horizon
	wanFree   []sim.Time // directed cluster-pair wide-area horizons, src*C+dst
	delivered []sim.Time // per-message delivery time

	// Incremental mode: everything before the first wide-area send is
	// independent of the WAN parameters, so a snapshot of the replay state
	// there lets WAN-only sweeps skip the shared prefix. wanStart is the
	// operation index of the first wide-area send (len(Ops) if none);
	// prefixMsgs counts messages sent before it.
	wanStart   int
	prefixMsgs int
	snapValid  bool
	snapLan    lanParams
	snapState  []sim.Time // concatenated copies of the five arrays at wanStart

	// Matched-replay state (SolveMatched), built on first use. rankOps
	// holds each rank's operation indices in record order; opPat maps each
	// OpRecv to its pattern ordinal (-1 elsewhere); the m* arrays, pending
	// sets and consumed flags are per-solve scratch. The event queue is a
	// per-rank wake array (mWake/mWakeOp: at most one live wakeup per rank,
	// timeInf when parked) with a cached minimum (minT/minOp/minRank); see
	// the queue comment in eval_matched.go.
	rankOps  [][]int32
	opPat    []int32
	mPos     []int32
	mAtRecv  []bool
	mAwait   []int64
	mWake    []sim.Time
	mWakeOp  []int32
	pending  [][]int32
	consumed []bool
	minT     sim.Time
	minOp    int32
	minRank  int32
	mNarrow  bool // current pass narrows tag-wildcard receives
	// mSpecific (computed once, mSpecificSet guards) marks graphs with no
	// wildcard receives, where the frozen pass IS the matched answer.
	mSpecific, mSpecificSet bool

	// Batched-solve state (SolveBatch), allocated on first use and reused
	// across chunks; see batch.go. msgSlot/slotCount are the read-only
	// message -> delivery-slot remap and msgSizeID/sizeCount the dense
	// message-size table (buildSlots); all four are shared by clones.
	batch     *batchState
	msgSlot   []int32
	msgSizeID []int32
	slotCount int
	sizeCount int
	// prog is the graph pre-compiled for the batched walk (buildProg):
	// static op classification with spans and receive runs fused. Built
	// once per graph, read-only, shared by clones.
	prog *batchProg

	// Counters for benchmarking and reports.
	fullSolves, incrementalSolves int
	matchedSolves, matchedNarrowed, matchedFallbacks,
	matchedConflicts int
	batchSolves, batchPoints int
	opsEvaluated             int64
}

// lanParams is the subset of network parameters that can affect replay
// state before the first wide-area send. Two parameter sets agreeing on
// these share the same prefix state.
type lanParams struct {
	intraLatency   sim.Time
	intraBandwidth float64
	sendOverhead   sim.Time
	recvOverhead   sim.Time
}

func lanOf(p network.Params) lanParams {
	return lanParams{p.IntraLatency, p.IntraBandwidth, p.SendOverhead, p.RecvOverhead}
}

// Graph returns the recorded graph the evaluator replays. It is read-only
// and safe to share: independent evaluators over the same graph let a sweep
// solve disjoint parameter sets concurrently.
func (e *Eval) Graph() *Graph {
	return e.g
}

// NewEval prepares an evaluator for g. The graph must be valid (see
// Graph.Validate); recorder-built graphs always are.
func NewEval(g *Graph) *Eval {
	e := &Eval{
		g:         g,
		rankEnd:   make([]sim.Time, g.Procs),
		nicFree:   make([]sim.Time, g.Procs),
		gwFree:    make([]sim.Time, g.Clusters),
		wanFree:   make([]sim.Time, g.Clusters*g.Clusters),
		delivered: make([]sim.Time, len(g.MsgSrc)),
	}
	e.wanStart = len(g.Ops)
	for i, k := range g.Ops {
		if k != OpSend {
			continue
		}
		m := g.Arg[i]
		if src, dst := g.MsgSrc[m], g.MsgDst[m]; src != dst && g.ClusterOf[src] != g.ClusterOf[dst] {
			e.wanStart = i
			e.prefixMsgs = int(m)
			break
		}
	}
	e.msgSlot, e.msgSizeID, e.slotCount, e.sizeCount = buildSlots(g)
	e.prog = buildProg(g, e.msgSlot, e.msgSizeID, e.wanStart)
	return e
}

// Solve predicts the completion time under p. Sweeps that vary only the
// wide-area knobs (WithWAN) automatically reuse the prefix snapshot; any
// other change falls back to a full pass, which also refreshes the
// snapshot.
func (e *Eval) Solve(p network.Params) sim.Time {
	if e.snapValid && lanOf(p) == e.snapLan {
		e.restore()
		e.incrementalSolves++
	} else {
		// ensureSnapshot leaves the live state exactly at the snapshot
		// point, so the suffix walk continues from it directly.
		e.ensureSnapshot(p)
		e.fullSolves++
	}
	e.walk(p, e.wanStart, len(e.g.Ops))
	return e.maxRankEnd()
}

// ensureSnapshot (re)builds the prefix snapshot for p's LAN parameters:
// clear, replay the WAN-independent prefix, snapshot. On return the live
// replay state equals the snapshot. Callers that find snapValid with a
// matching lanOf may restore() instead, which is cheaper.
func (e *Eval) ensureSnapshot(p network.Params) {
	clearTimes(e.rankEnd)
	clearTimes(e.nicFree)
	clearTimes(e.gwFree)
	clearTimes(e.wanFree)
	e.walk(p, 0, e.wanStart)
	e.snapshot(lanOf(p))
}

// walk replays operations [lo, hi) under p against the live scalar state.
// The prefix/suffix split at wanStart is the only split callers use, so a
// walk never straddles a snapshot point.
func (e *Eval) walk(p network.Params, lo, hi int) {
	g := e.g
	c := g.Clusters
	rttExtra := sim.Time(float64(2*p.WANLatency) * p.WANMessageRTTFactor)
	for i := lo; i < hi; i++ {
		rank := g.Rank[i]
		switch g.Ops[i] {
		case OpSpan:
			e.rankEnd[rank] += sim.Time(g.Arg[i])
		case OpSend:
			m := g.Arg[i]
			size := g.MsgBytes[m]
			// The sender is occupied for the software overhead, and the
			// message enters the network at the same horizon (network.send's
			// ready and Env.Send's post-charge clock coincide).
			ready := e.rankEnd[rank] + p.SendOverhead
			e.rankEnd[rank] = ready
			dst := g.MsgDst[m]
			if dst == rank {
				// Loopback: software overheads only.
				e.delivered[m] = ready + p.RecvOverhead
				break
			}
			nicDone := reserve(&e.nicFree[rank], ready, size, p.IntraBandwidth, 0)
			localArrive := nicDone + p.IntraLatency
			if sc, dc := g.ClusterOf[rank], g.ClusterOf[dst]; sc != dc {
				wanDone := reserve(&e.wanFree[int(sc)*c+int(dc)],
					localArrive+p.WANPerMessage, size, p.WANBandwidth, rttExtra)
				gwDone := reserve(&e.gwFree[dc], wanDone+p.WANLatency, size, p.IntraBandwidth, 0)
				e.delivered[m] = gwDone + p.IntraLatency + p.RecvOverhead
			} else {
				e.delivered[m] = localArrive + p.RecvOverhead
			}
		case OpRecv:
			if d := e.delivered[g.Arg[i]]; d > e.rankEnd[rank] {
				e.rankEnd[rank] = d
			}
		}
	}
	e.opsEvaluated += int64(hi - lo)
}

func (e *Eval) maxRankEnd() sim.Time {
	var elapsed sim.Time
	for _, t := range e.rankEnd {
		if t > elapsed {
			elapsed = t
		}
	}
	return elapsed
}

// reserve mirrors network.link.reserveWith: book size bytes onto the link
// no earlier than ready, holding it for the transmission plus extra, and
// return when the last byte leaves.
func reserve(freeAt *sim.Time, ready sim.Time, size int64, bandwidth float64, extra sim.Time) sim.Time {
	start := ready
	if *freeAt > start {
		start = *freeAt
	}
	end := start + sim.TransmissionTime(size, bandwidth) + extra
	*freeAt = end
	return end
}

func clearTimes(s []sim.Time) {
	for i := range s {
		s[i] = 0
	}
}

// snapshot saves the replay state reached just before the first wide-area
// send. delivered is copied only up to the prefix: later entries are
// rewritten by their own send before any recv reads them (record order).
func (e *Eval) snapshot(lan lanParams) {
	need := len(e.rankEnd) + len(e.nicFree) + len(e.gwFree) + len(e.wanFree) + e.prefixMsgs
	if cap(e.snapState) < need {
		e.snapState = make([]sim.Time, need)
	}
	s := e.snapState[:0]
	s = append(s, e.rankEnd...)
	s = append(s, e.nicFree...)
	s = append(s, e.gwFree...)
	s = append(s, e.wanFree...)
	s = append(s, e.delivered[:e.prefixMsgs]...)
	e.snapState = s
	e.snapLan = lan
	e.snapValid = true
}

func (e *Eval) restore() {
	s := e.snapState
	s = s[copy(e.rankEnd, s):]
	s = s[copy(e.nicFree, s):]
	s = s[copy(e.gwFree, s):]
	s = s[copy(e.wanFree, s):]
	copy(e.delivered[:e.prefixMsgs], s)
}

// Stats reports how the evaluator has been exercised.
type Stats struct {
	// FullSolves and IncrementalSolves count Solve calls by mode.
	FullSolves, IncrementalSolves int
	// MatchedSolves counts completed SolveMatched replays;
	// MatchedNarrowed counts those that stalled and succeeded on the
	// narrowed second pass; MatchedFallbacks counts replays that stalled
	// on both passes and fell back to the frozen matching;
	// MatchedConflicts counts recorded poll messages a dynamic wildcard
	// match consumed first.
	MatchedSolves, MatchedNarrowed, MatchedFallbacks, MatchedConflicts int
	// BatchSolves counts batched chunk passes (SolveBatch walks the DAG
	// once per chunk of lanes); BatchPoints the parameter points answered
	// through them.
	BatchSolves, BatchPoints int
	// OpsEvaluated is the total operations replayed across all solves;
	// with incremental reuse it undercounts Nodes×Solves by the skipped
	// prefixes.
	OpsEvaluated int64
	// PrefixNodes is the length of the WAN-independent prefix that
	// incremental solves skip.
	PrefixNodes int
}

// Stats returns the evaluator's counters.
func (e *Eval) Stats() Stats {
	return Stats{
		FullSolves:        e.fullSolves,
		IncrementalSolves: e.incrementalSolves,
		MatchedSolves:     e.matchedSolves,
		MatchedNarrowed:   e.matchedNarrowed,
		MatchedFallbacks:  e.matchedFallbacks,
		MatchedConflicts:  e.matchedConflicts,
		BatchSolves:       e.batchSolves,
		BatchPoints:       e.batchPoints,
		OpsEvaluated:      e.opsEvaluated,
		PrefixNodes:       e.wanStart,
	}
}

// Sensitivity decomposes a predicted completion time into the shares
// attributable to wide-area latency and bandwidth, LLAMP-style: solve at
// p, then with the latency zeroed, then with infinite bandwidth. The
// differences are the critical-path time each resource costs the
// application at that point.
type Sensitivity struct {
	// Elapsed is the predicted completion time at the asked point.
	Elapsed sim.Time
	// LatencyCost is Elapsed minus the completion time with a zero-latency
	// WAN (bandwidth unchanged): the critical-path time bought back by an
	// infinitely short link.
	LatencyCost sim.Time
	// BandwidthCost is Elapsed minus the completion time with an
	// infinite-bandwidth WAN (latency unchanged).
	BandwidthCost sim.Time
}

// LatencyShare returns LatencyCost as a fraction of Elapsed.
func (s Sensitivity) LatencyShare() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.LatencyCost) / float64(s.Elapsed)
}

// BandwidthShare returns BandwidthCost as a fraction of Elapsed.
func (s Sensitivity) BandwidthShare() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.BandwidthCost) / float64(s.Elapsed)
}

// Sensitivity computes the latency/bandwidth decomposition at p.
func (e *Eval) Sensitivity(p network.Params) Sensitivity {
	s := Sensitivity{Elapsed: e.Solve(p)}
	zeroLat := p
	zeroLat.WANLatency = 0
	s.LatencyCost = s.Elapsed - e.Solve(zeroLat)
	infBW := p
	infBW.WANBandwidth = math.MaxFloat64
	s.BandwidthCost = s.Elapsed - e.Solve(infBW)
	return s
}
