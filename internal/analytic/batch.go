package analytic

import (
	"sync"

	"twolayer/internal/network"
	"twolayer/internal/sim"
)

// Batched solving: one topological walk of the recorded DAG answers many
// candidate network points at once. The replay state becomes structure-of-
// arrays — for every rank clock, NIC horizon, gateway horizon, wide-area
// pipe and message delivery there are K lanes, one per candidate point —
// and each operation is decoded once and applied to all lanes before the
// walk moves on. That amortizes the per-node work a scalar grid loop pays
// once per point (op decode, graph-array loads, branch dispatch) and,
// more importantly, replaces the scalar replay's single serial dependency
// chain with K independent ones the CPU can overlap: the adds, max-merges
// and bandwidth divisions of different lanes pipeline instead of stalling
// on each other.
//
// Every lane performs exactly the arithmetic the scalar Solve performs for
// its point — same operations, same order, same intermediate values — so
// SolveBatch is bit-identical to calling Solve once per point. The one
// shared computation, the LAN transmission time of a message when all
// lanes agree on the LAN parameters, is a pure function of (size,
// bandwidth) and therefore equals the value each lane would have computed
// itself.

// batchLanes is the lane count of one chunk: wide enough to amortize op
// decode and fill the CPU's parallel arithmetic, narrow enough that the
// K-wide delivery array of a large graph stays cache-resident. Points
// beyond it are solved in successive chunks over the same reused state.
const batchLanes = 32

// batchState is the K-lane replay state plus the per-lane parameter
// columns, allocated once per evaluator and reused across chunks.
type batchState struct {
	lanes int // allocated lane capacity

	// Lane-major state: entity j's lanes live at [j*K, (j+1)*K).
	rankEnd, nicFree, gwFree, wanFree, delivered []sim.Time

	// Per-lane parameter columns.
	sendOv, recvOv, intraLat, wanLat, wanPer, rtt []sim.Time
	intraBW, wanBW                                []float64

	// Folded per-lane sums the walk would otherwise re-add per message:
	// ilWanPer[lane] = intraLat + wanPer, ilRecv[lane] = intraLat + recvOv.
	// Integer addition is associative, so folding the constants once per
	// chunk leaves every lane's result bit-identical.
	ilWanPer, ilRecv []sim.Time

	// uniform marks chunks whose lanes all share the same LAN parameters
	// (lanParams); the walk then hoists LAN-side constants out of the lane
	// loops and the prefix snapshot is shared across all lanes.
	uniform bool

	// wanTxRows caches, per distinct message size (dense ids from
	// buildSlots), the per-lane wide-area transmission time plus the
	// lane's message RTT charge. Applications send a handful of distinct
	// sizes thousands of times; computing a size's K divisions once and
	// replaying the cached row is bit-identical (a pure function of size
	// and per-chunk lane constants) and removes the single hottest
	// arithmetic from the walk. wanTxDone marks the computed rows and is
	// cleared whenever the lane columns change.
	wanTxRows []sim.Time
	wanTxDone []bool

	// intraTxVal caches, per distinct message size, the LAN transmission
	// time under the chunk's shared intra-cluster bandwidth. Only consulted
	// on the uniform fast path, where every lane would compute the same
	// value; cleared with wanTxDone whenever the lane columns change.
	intraTxVal  []sim.Time
	intraTxDone []bool
}

// intraTx returns the LAN transmission time of one message size under the
// chunk's shared intra-cluster bandwidth (uniform chunks only), computing
// and caching it on first sight.
func (b *batchState) intraTx(sid int32, size int64) sim.Time {
	if !b.intraTxDone[sid] {
		b.intraTxVal[sid] = sim.TransmissionTime(size, b.intraBW[0])
		b.intraTxDone[sid] = true
	}
	return b.intraTxVal[sid]
}

// wanTx returns, per lane, the WAN transmission time of one message size
// plus the lane's per-message RTT charge, computing and caching the row on
// first sight. sid is the size's dense id from the graph's size table.
func (b *batchState) wanTx(sid int32, size int64, k int) []sim.Time {
	row := b.wanTxRows[int(sid)*b.lanes : int(sid)*b.lanes+k]
	if !b.wanTxDone[sid] {
		for lane := 0; lane < k; lane++ {
			row[lane] = sim.TransmissionTime(size, b.wanBW[lane]) + b.rtt[lane]
		}
		b.wanTxDone[sid] = true
	}
	return row
}

// buildSlots computes the message -> delivery-slot remap the batched walk
// uses in place of per-message delivery rows. A message's row is live from
// its send to its last receive; after that the walk never reads it again,
// so the slot can be handed to a later message (linear-scan allocation in
// record order). Messages that are never received free their slot at the
// send itself: their row is written but never read. The remap only moves
// where a lane's delivery time is stored — every lane still computes the
// scalar walk's exact values — but it shrinks the K-wide delivery state
// from all messages to the maximum simultaneously-live count, which is
// what keeps large graphs' batch state cache-resident.
func buildSlots(g *Graph) (msgSlot, msgSizeID []int32, slots, sizes int) {
	nmsg := len(g.MsgSrc)
	msgSlot = make([]int32, nmsg)
	// Dense ids for the distinct message sizes, so per-chunk caches index
	// a slice instead of hashing the raw byte count.
	msgSizeID = make([]int32, nmsg)
	sizeID := make(map[int64]int32)
	for m, size := range g.MsgBytes {
		id, ok := sizeID[size]
		if !ok {
			id = int32(len(sizeID))
			sizeID[size] = id
		}
		msgSizeID[m] = id
	}
	sizes = len(sizeID)
	if sizes == 0 {
		sizes = 1
	}
	lastUse := make([]int32, nmsg)
	for m := range lastUse {
		lastUse[m] = -1
	}
	for i, op := range g.Ops {
		if op == OpRecv {
			lastUse[g.Arg[i]] = int32(i)
		}
	}
	// relHead/relNext chain, per op index, the messages whose last receive
	// is that op (so their slots free there).
	relHead := make([]int32, len(g.Ops))
	for i := range relHead {
		relHead[i] = -1
	}
	relNext := make([]int32, nmsg)
	for m, last := range lastUse {
		if last >= 0 {
			relNext[m] = relHead[last]
			relHead[last] = int32(m)
		}
	}
	var free []int32
	for i, op := range g.Ops {
		if op == OpSend {
			m := g.Arg[i]
			var s int32
			if n := len(free); n > 0 {
				s = free[n-1]
				free = free[:n-1]
			} else {
				s = int32(slots)
				slots++
			}
			msgSlot[m] = s
			if lastUse[m] < 0 {
				free = append(free, s)
			}
		}
		for m := relHead[i]; m >= 0; m = relNext[m] {
			free = append(free, msgSlot[m])
		}
	}
	if slots == 0 {
		slots = 1 // degenerate graph with no sends; keep broadcasts trivial
	}
	return msgSlot, msgSizeID, slots, sizes
}

func (e *Eval) ensureBatch(k int) *batchState {
	b := e.batch
	if b == nil {
		b = &batchState{}
		e.batch = b
	}
	if b.lanes < k {
		g := e.g
		b.lanes = k
		b.rankEnd = make([]sim.Time, g.Procs*k)
		b.nicFree = make([]sim.Time, g.Procs*k)
		b.gwFree = make([]sim.Time, g.Clusters*k)
		b.wanFree = make([]sim.Time, g.Clusters*g.Clusters*k)
		b.delivered = make([]sim.Time, e.slotCount*k)
		b.sendOv = make([]sim.Time, k)
		b.recvOv = make([]sim.Time, k)
		b.intraLat = make([]sim.Time, k)
		b.wanLat = make([]sim.Time, k)
		b.wanPer = make([]sim.Time, k)
		b.rtt = make([]sim.Time, k)
		b.ilWanPer = make([]sim.Time, k)
		b.ilRecv = make([]sim.Time, k)
		b.wanTxRows = make([]sim.Time, e.sizeCount*k)
		b.wanTxDone = make([]bool, e.sizeCount)
		b.intraTxVal = make([]sim.Time, e.sizeCount)
		b.intraTxDone = make([]bool, e.sizeCount)
		b.intraBW = make([]float64, k)
		b.wanBW = make([]float64, k)
	}
	return b
}

// SolveBatch predicts the completion time under every point of ps with the
// frozen replay, in one structure-of-arrays walk of the graph per chunk of
// lanes. The result is bit-identical to calling Solve(ps[i]) for each i
// — the property tests in batch_test.go pin this — and the WAN-prefix
// snapshot is shared across all points that agree on the LAN parameters,
// exactly as consecutive scalar solves would share it.
func (e *Eval) SolveBatch(ps []network.Params) []sim.Time {
	out := make([]sim.Time, len(ps))
	for lo := 0; lo < len(ps); lo += batchLanes {
		hi := min(lo+batchLanes, len(ps))
		e.solveBatchChunk(ps[lo:hi], out[lo:hi])
	}
	return out
}

// SolveBatchParallel is SolveBatch with the chunks sharded across a worker
// pool of clones. Results are bit-identical to SolveBatch (lanes are
// independent); workers <= 1, or too few chunks to share, degrade to the
// in-place single-goroutine pass. Counters of the clones are folded back
// into e before returning.
func (e *Eval) SolveBatchParallel(ps []network.Params, workers int) []sim.Time {
	chunks := (len(ps) + batchLanes - 1) / batchLanes
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		return e.SolveBatch(ps)
	}
	// Warm the shared prefix snapshot once so every clone inherits it
	// instead of re-walking the WAN-independent prefix. Only meaningful
	// when all points share LAN parameters; otherwise each chunk decides
	// for itself.
	if e.wanStart > 0 && uniformLan(ps) && !(e.snapValid && e.snapLan == lanOf(ps[0])) {
		e.ensureSnapshot(ps[0])
	}
	out := make([]sim.Time, len(ps))
	// Contiguous blocks of whole chunks per worker.
	per := (chunks + workers - 1) / workers * batchLanes
	var wg sync.WaitGroup
	clones := make([]*Eval, 0, workers)
	for lo := 0; lo < len(ps); lo += per {
		hi := min(lo+per, len(ps))
		cl := e.Clone()
		clones = append(clones, cl)
		wg.Add(1)
		go func(cl *Eval, lo, hi int) {
			defer wg.Done()
			for o := lo; o < hi; o += batchLanes {
				h := min(o+batchLanes, hi)
				cl.solveBatchChunk(ps[o:h], out[o:h])
			}
		}(cl, lo, hi)
	}
	wg.Wait()
	for _, cl := range clones {
		e.absorb(cl)
	}
	return out
}

// SolveMatchedBatch predicts the completion time under every point of ps
// with the matched replay, sharding the points across a pool of clones.
// The matched replay is a small discrete-event simulation whose matching
// decisions depend on the evolving per-point state, so its lanes cannot
// share one walk the way the frozen replay's can — but the points are
// independent, so clones solve disjoint blocks concurrently and the result
// is bit-identical to calling SolveMatched(ps[i]) for each i at any worker
// count. Counters of the clones are folded back into e.
func (e *Eval) SolveMatchedBatch(ps []network.Params, workers int) []sim.Time {
	out := make([]sim.Time, len(ps))
	if workers > len(ps) {
		workers = len(ps)
	}
	if workers <= 1 {
		for i, p := range ps {
			out[i] = e.SolveMatched(p)
		}
		return out
	}
	// Build the shared streams (and the wildcard classification) once,
	// before cloning, so the clones share them read-only.
	if !e.mSpecificSet {
		e.mSpecific = e.allSpecific()
		e.mSpecificSet = true
	}
	e.ensureMatched()
	per := (len(ps) + workers - 1) / workers
	var wg sync.WaitGroup
	clones := make([]*Eval, 0, workers)
	for lo := 0; lo < len(ps); lo += per {
		hi := min(lo+per, len(ps))
		cl := e.Clone()
		clones = append(clones, cl)
		wg.Add(1)
		go func(cl *Eval, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = cl.SolveMatched(ps[i])
			}
		}(cl, lo, hi)
	}
	wg.Wait()
	for _, cl := range clones {
		e.absorb(cl)
	}
	return out
}

// Clone returns an independent evaluator over the same (read-only, shared)
// graph, for concurrent use from another goroutine. The clone shares the
// prepared matched-replay streams and inherits a copy of the current
// prefix snapshot, so it starts as warm as its parent; all mutable replay
// state is its own. Clone itself must be called from the goroutine that
// owns e, not concurrently with solves on e.
func (e *Eval) Clone() *Eval {
	g := e.g
	c := &Eval{
		g:            g,
		rankEnd:      make([]sim.Time, g.Procs),
		nicFree:      make([]sim.Time, g.Procs),
		gwFree:       make([]sim.Time, g.Clusters),
		wanFree:      make([]sim.Time, g.Clusters*g.Clusters),
		delivered:    make([]sim.Time, len(g.MsgSrc)),
		wanStart:     e.wanStart,
		prefixMsgs:   e.prefixMsgs,
		msgSlot:      e.msgSlot,
		msgSizeID:    e.msgSizeID,
		slotCount:    e.slotCount,
		sizeCount:    e.sizeCount,
		prog:         e.prog,
		rankOps:      e.rankOps,
		opPat:        e.opPat,
		mSpecific:    e.mSpecific,
		mSpecificSet: e.mSpecificSet,
	}
	if e.snapValid {
		c.snapValid = true
		c.snapLan = e.snapLan
		c.snapState = append([]sim.Time(nil), e.snapState...)
	}
	if c.rankOps != nil {
		c.allocMatchedScratch()
	}
	return c
}

// absorb folds a finished clone's counters into e, so Stats stays
// meaningful across worker-pool solves.
func (e *Eval) absorb(c *Eval) {
	e.fullSolves += c.fullSolves
	e.incrementalSolves += c.incrementalSolves
	e.matchedSolves += c.matchedSolves
	e.matchedNarrowed += c.matchedNarrowed
	e.matchedFallbacks += c.matchedFallbacks
	e.matchedConflicts += c.matchedConflicts
	e.batchSolves += c.batchSolves
	e.batchPoints += c.batchPoints
	e.opsEvaluated += c.opsEvaluated
}

// uniformLan reports whether every point shares ps[0]'s LAN parameters.
func uniformLan(ps []network.Params) bool {
	lan := lanOf(ps[0])
	for _, p := range ps[1:] {
		if lanOf(p) != lan {
			return false
		}
	}
	return true
}

// solveBatchChunk answers one chunk of at most batchLanes points: load the
// per-lane parameter columns, seed the lane state (from the shared prefix
// snapshot when possible), walk the suffix once, reduce per-lane maxima.
func (e *Eval) solveBatchChunk(ps []network.Params, out []sim.Time) {
	k := len(ps)
	if k == 0 {
		return
	}
	b := e.ensureBatch(k)
	for i, p := range ps {
		b.sendOv[i] = p.SendOverhead
		b.recvOv[i] = p.RecvOverhead
		b.intraLat[i] = p.IntraLatency
		b.intraBW[i] = p.IntraBandwidth
		b.wanLat[i] = p.WANLatency
		b.wanBW[i] = p.WANBandwidth
		b.wanPer[i] = p.WANPerMessage
		b.rtt[i] = sim.Time(float64(2*p.WANLatency) * p.WANMessageRTTFactor)
		b.ilWanPer[i] = p.IntraLatency + p.WANPerMessage
		b.ilRecv[i] = p.IntraLatency + p.RecvOverhead
	}
	b.uniform = uniformLan(ps)
	clear(b.wanTxDone)
	clear(b.intraTxDone)

	start := 0
	if b.uniform && e.wanStart > 0 {
		// All lanes share the WAN-independent prefix: compute (or reuse)
		// the scalar snapshot once and broadcast it across the lanes.
		if !(e.snapValid && e.snapLan == lanOf(ps[0])) {
			e.ensureSnapshot(ps[0])
		} else {
			e.restore()
		}
		broadcast(b.rankEnd, e.rankEnd, k)
		broadcast(b.nicFree, e.nicFree, k)
		broadcast(b.gwFree, e.gwFree, k)
		broadcast(b.wanFree, e.wanFree, k)
		// Scatter the prefix deliveries through the slot remap in send
		// order: when prefix messages shared a slot, the later (the one
		// still live at wanStart) lands last, which is the value the walk
		// may still read.
		for m := 0; m < e.prefixMsgs; m++ {
			lanes := b.delivered[int(e.msgSlot[m])*k:]
			v := e.delivered[m]
			for i := 0; i < k; i++ {
				lanes[i] = v
			}
		}
		start = e.prog.start
		e.opsEvaluated += int64(len(e.g.Ops)-e.wanStart) * int64(k)
	} else {
		e.opsEvaluated += int64(len(e.g.Ops)) * int64(k)
		zeroLanes(b.rankEnd, e.g.Procs*k)
		zeroLanes(b.nicFree, e.g.Procs*k)
		zeroLanes(b.gwFree, e.g.Clusters*k)
		zeroLanes(b.wanFree, e.g.Clusters*e.g.Clusters*k)
		// delivered needs no clearing: record order writes every message's
		// lanes before any receive reads them.
	}

	if k == batchLanes {
		e.batchWalk32(b, start)
	} else {
		e.batchWalk(b, k, start)
	}
	e.batchSolves++
	e.batchPoints += k

	// Per-lane maximum over the rank clocks.
	g := e.g
	for lane := 0; lane < k; lane++ {
		out[lane] = 0
	}
	for r := 0; r < g.Procs; r++ {
		re := b.rankEnd[r*k : (r+1)*k]
		for lane, t := range re {
			if t > out[lane] {
				out[lane] = t
			}
		}
	}
}

// broadcast fills each entity's k lanes with its scalar value.
func broadcast(dst, src []sim.Time, k int) {
	for j, v := range src {
		lanes := dst[j*k : (j+1)*k]
		for i := range lanes {
			lanes[i] = v
		}
	}
}

func zeroLanes(s []sim.Time, n int) {
	clear(s[:n])
}

// The batch program: the graph's op stream pre-compiled for the batched
// walk. Classification that is static per graph — loopback vs intra-cluster
// vs wide-area send, the delivery slot, the dense size id, the directed
// cluster-pair row — is resolved once here instead of once per op per
// chunk, and two record-order fusions fold ops the walk would otherwise
// decode separately:
//
//   - consecutive OpSpans of one rank become a single span of the summed
//     duration (int64 addition is associative, so the fused add produces
//     the exact sum the op-at-a-time adds produce);
//   - consecutive OpRecvs of one rank become one run that merges several
//     delivery rows into the rank clock under a single decode (max is
//     associative, and the fused ops are adjacent in record order, so no
//     other op was ever between them);
//   - a lone OpRecv directly followed by the same rank's OpSend folds its
//     max-merge into the send's ready time (ready = max(clock, delivery) +
//     sendOverhead — the exact two-step value), which drops a whole entry
//     and a rank-row round trip per request/reply turnaround.
//
// Both fusions stop at the wanStart boundary so a snapshot-seeded walk can
// still enter the program exactly at the first wide-area send.
const (
	bpSpan uint8 = iota
	bpRecv
	bpRecvRun
	bpLoopback
	bpLocal
	bpWAN
	bpRecvLocal // bpRecv fused into the same rank's next bpLocal
	bpRecvWAN   // bpRecv fused into the same rank's next bpWAN
)

type batchProg struct {
	kind []uint8
	rank []int32 // acting rank
	a    []int32 // delivery slot (sends, bpRecv) or runSlots offset (bpRecvRun)
	b    []int32 // dense size id (bpLocal, bpWAN) or run length (bpRecvRun)
	c    []int32 // directed cluster-pair row (bpWAN)
	d    []int32 // destination cluster (bpWAN)
	t    []int64 // fused duration (bpSpan) or message bytes (send kinds)
	r    []int32 // fused receive's delivery slot (bpRecvLocal, bpRecvWAN)

	runSlots []int32 // bpRecvRun operands

	start int // program counterpart of Eval.wanStart
}

func buildProg(g *Graph, msgSlot, msgSizeID []int32, wanStart int) *batchProg {
	n := len(g.Ops)
	p := &batchProg{start: -1}
	emit := func(kind uint8, rank, a, b, c, d, r int32, t int64) {
		p.kind = append(p.kind, kind)
		p.rank = append(p.rank, rank)
		p.a = append(p.a, a)
		p.b = append(p.b, b)
		p.c = append(p.c, c)
		p.d = append(p.d, d)
		p.r = append(p.r, r)
		p.t = append(p.t, t)
	}
	// classify returns the send kind of op i and pre-resolves its rows.
	classify := func(i int) (kind uint8, a, b, c, d int32, t int64) {
		m := g.Arg[i]
		rank := g.Rank[i]
		dst := g.MsgDst[m]
		sc, dc := g.ClusterOf[rank], g.ClusterOf[dst]
		switch {
		case dst == rank:
			return bpLoopback, msgSlot[m], 0, 0, 0, 0
		case sc == dc:
			return bpLocal, msgSlot[m], msgSizeID[m], 0, 0, g.MsgBytes[m]
		default:
			return bpWAN, msgSlot[m], msgSizeID[m], int32(int(sc)*g.Clusters + int(dc)), dc, g.MsgBytes[m]
		}
	}
	for i := 0; i < n; i++ {
		if i == wanStart {
			p.start = len(p.kind)
		}
		rank := g.Rank[i]
		switch g.Ops[i] {
		case OpSpan:
			t := g.Arg[i]
			for i+1 < n && i+1 != wanStart && g.Ops[i+1] == OpSpan && g.Rank[i+1] == rank {
				i++
				t += g.Arg[i]
			}
			emit(bpSpan, rank, 0, 0, 0, 0, 0, t)
		case OpRecv:
			first := len(p.runSlots)
			p.runSlots = append(p.runSlots, msgSlot[g.Arg[i]])
			for i+1 < n && i+1 != wanStart && g.Ops[i+1] == OpRecv && g.Rank[i+1] == rank {
				i++
				p.runSlots = append(p.runSlots, msgSlot[g.Arg[i]])
			}
			if cnt := len(p.runSlots) - first; cnt == 1 {
				rs := p.runSlots[first]
				p.runSlots = p.runSlots[:first]
				if i+1 < n && i+1 != wanStart && g.Ops[i+1] == OpSend && g.Rank[i+1] == rank {
					if kind, a, b, c, d, t := classify(i + 1); kind == bpLocal || kind == bpWAN {
						i++
						emit(kind+(bpRecvLocal-bpLocal), rank, a, b, c, d, rs, t)
						continue
					}
				}
				emit(bpRecv, rank, rs, 0, 0, 0, 0, 0)
			} else {
				emit(bpRecvRun, rank, int32(first), int32(cnt), 0, 0, 0, 0)
			}
		case OpSend:
			kind, a, b, c, d, t := classify(i)
			emit(kind, rank, a, b, c, d, 0, t)
		}
	}
	if p.start < 0 {
		p.start = len(p.kind)
	}
	return p
}

// batchWalk replays the batch program from entry `start` across k lanes.
// Each lane runs the scalar walk's arithmetic exactly; the uniform-LAN
// fast path additionally hoists the LAN-side constants (software
// overheads, intra latency, LAN transmission time of the message) out of
// the lane loops — pure functions of values all lanes share, so the
// hoisted results are the values every lane would have computed.
func (e *Eval) batchWalk(b *batchState, k int, start int) {
	p := e.prog
	kinds := p.kind
	for i := start; i < len(kinds); i++ {
		rank := int(p.rank[i])
		switch kinds[i] {
		case bpSpan:
			d := sim.Time(p.t[i])
			re := b.rankEnd[rank*k : (rank+1)*k]
			for lane := range re {
				re[lane] += d
			}
		case bpRecv:
			re := b.rankEnd[rank*k : (rank+1)*k]
			del := b.delivered[int(p.a[i])*k:][:len(re)]
			for lane := range re {
				if del[lane] > re[lane] {
					re[lane] = del[lane]
				}
			}
		case bpRecvRun:
			re := b.rankEnd[rank*k : (rank+1)*k]
			for _, sl := range p.runSlots[p.a[i] : p.a[i]+p.b[i]] {
				del := b.delivered[int(sl)*k:][:len(re)]
				for lane := range re {
					if del[lane] > re[lane] {
						re[lane] = del[lane]
					}
				}
			}
		case bpLoopback:
			re := b.rankEnd[rank*k : (rank+1)*k]
			del := b.delivered[int(p.a[i])*k:][:len(re)]
			if b.uniform {
				so, ro := b.sendOv[0], b.recvOv[0]
				for lane := range re {
					ready := re[lane] + so
					re[lane] = ready
					del[lane] = ready + ro
				}
			} else {
				for lane := range re {
					ready := re[lane] + b.sendOv[lane]
					re[lane] = ready
					del[lane] = ready + b.recvOv[lane]
				}
			}
		case bpLocal:
			re := b.rankEnd[rank*k : (rank+1)*k]
			del := b.delivered[int(p.a[i])*k:][:len(re)]
			nic := b.nicFree[rank*k:][:len(re)]
			if b.uniform {
				so, ilro := b.sendOv[0], b.ilRecv[0]
				tx := b.intraTx(p.b[i], p.t[i])
				for lane := range re {
					ready := re[lane] + so
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + tx
					nic[lane] = nicDone
					del[lane] = nicDone + ilro
				}
			} else {
				for lane := range re {
					ready := re[lane] + b.sendOv[lane]
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					nic[lane] = nicDone
					del[lane] = nicDone + b.ilRecv[lane]
				}
			}
		case bpRecvLocal:
			re := b.rankEnd[rank*k : (rank+1)*k]
			dr := b.delivered[int(p.r[i])*k:][:len(re)]
			del := b.delivered[int(p.a[i])*k:][:len(re)]
			nic := b.nicFree[rank*k:][:len(re)]
			if b.uniform {
				so, ilro := b.sendOv[0], b.ilRecv[0]
				tx := b.intraTx(p.b[i], p.t[i])
				for lane := range re {
					v := re[lane]
					if dr[lane] > v {
						v = dr[lane]
					}
					ready := v + so
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + tx
					nic[lane] = nicDone
					del[lane] = nicDone + ilro
				}
			} else {
				for lane := range re {
					v := re[lane]
					if dr[lane] > v {
						v = dr[lane]
					}
					ready := v + b.sendOv[lane]
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					nic[lane] = nicDone
					del[lane] = nicDone + b.ilRecv[lane]
				}
			}
		case bpRecvWAN:
			re := b.rankEnd[rank*k : (rank+1)*k]
			dr := b.delivered[int(p.r[i])*k:][:len(re)]
			del := b.delivered[int(p.a[i])*k:][:len(re)]
			nic := b.nicFree[rank*k:][:len(re)]
			wan := b.wanFree[int(p.c[i])*k:][:len(re)]
			gw := b.gwFree[int(p.d[i])*k:][:len(re)]
			wtx := b.wanTx(p.b[i], p.t[i], k)[:len(re)]
			if b.uniform {
				so, ilro := b.sendOv[0], b.ilRecv[0]
				tx := b.intraTx(p.b[i], p.t[i])
				ilwp := b.ilWanPer[:len(re)]
				wlat := b.wanLat[:len(re)]
				for lane := range re {
					v := re[lane]
					if dr[lane] > v {
						v = dr[lane]
					}
					ready := v + so
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + tx
					nic[lane] = nicDone
					s = nicDone + ilwp[lane]
					if wan[lane] > s {
						s = wan[lane]
					}
					wanDone := s + wtx[lane]
					wan[lane] = wanDone
					s = wanDone + wlat[lane]
					if gw[lane] > s {
						s = gw[lane]
					}
					gwDone := s + tx
					gw[lane] = gwDone
					del[lane] = gwDone + ilro
				}
			} else {
				for lane := range re {
					v := re[lane]
					if dr[lane] > v {
						v = dr[lane]
					}
					ready := v + b.sendOv[lane]
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					nic[lane] = nicDone
					s = nicDone + b.ilWanPer[lane]
					if wan[lane] > s {
						s = wan[lane]
					}
					wanDone := s + wtx[lane]
					wan[lane] = wanDone
					s = wanDone + b.wanLat[lane]
					if gw[lane] > s {
						s = gw[lane]
					}
					gwDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					gw[lane] = gwDone
					del[lane] = gwDone + b.ilRecv[lane]
				}
			}
		case bpWAN:
			re := b.rankEnd[rank*k : (rank+1)*k]
			del := b.delivered[int(p.a[i])*k:][:len(re)]
			nic := b.nicFree[rank*k:][:len(re)]
			wan := b.wanFree[int(p.c[i])*k:][:len(re)]
			gw := b.gwFree[int(p.d[i])*k:][:len(re)]
			wtx := b.wanTx(p.b[i], p.t[i], k)[:len(re)]
			if b.uniform {
				so, ilro := b.sendOv[0], b.ilRecv[0]
				tx := b.intraTx(p.b[i], p.t[i])
				ilwp := b.ilWanPer[:len(re)]
				wlat := b.wanLat[:len(re)]
				for lane := range re {
					ready := re[lane] + so
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + tx
					nic[lane] = nicDone
					s = nicDone + ilwp[lane]
					if wan[lane] > s {
						s = wan[lane]
					}
					wanDone := s + wtx[lane]
					wan[lane] = wanDone
					s = wanDone + wlat[lane]
					if gw[lane] > s {
						s = gw[lane]
					}
					gwDone := s + tx
					gw[lane] = gwDone
					del[lane] = gwDone + ilro
				}
			} else {
				for lane := range re {
					ready := re[lane] + b.sendOv[lane]
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					nic[lane] = nicDone
					s = nicDone + b.ilWanPer[lane]
					if wan[lane] > s {
						s = wan[lane]
					}
					wanDone := s + wtx[lane]
					wan[lane] = wanDone
					s = wanDone + b.wanLat[lane]
					if gw[lane] > s {
						s = gw[lane]
					}
					gwDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					gw[lane] = gwDone
					del[lane] = gwDone + b.ilRecv[lane]
				}
			}
		}
	}
}

// batchWalk32 is batchWalk specialized to full chunks (k == batchLanes).
// Converting each entity's lane slice to a *[batchLanes]sim.Time array
// pointer gives every lane loop a compile-time trip count and no bounds
// checks — worth ~30% on the walk, the kernel the whole grid spends its
// time in. The arithmetic is identical to batchWalk's.
func (e *Eval) batchWalk32(b *batchState, start int) {
	const k = batchLanes
	type row = [batchLanes]sim.Time
	p := e.prog
	kinds := p.kind
	wanLatCol := (*row)(b.wanLat)
	ilWanPer := (*row)(b.ilWanPer)
	ilRecv := (*row)(b.ilRecv)
	for i := start; i < len(kinds); i++ {
		rank := int(p.rank[i])
		switch kinds[i] {
		case bpSpan:
			d := sim.Time(p.t[i])
			re := (*row)(b.rankEnd[rank*k:])
			for lane := 0; lane < k; lane++ {
				re[lane] += d
			}
		case bpRecv:
			re := (*row)(b.rankEnd[rank*k:])
			del := (*row)(b.delivered[int(p.a[i])*k:])
			for lane := 0; lane < k; lane++ {
				if del[lane] > re[lane] {
					re[lane] = del[lane]
				}
			}
		case bpRecvRun:
			re := (*row)(b.rankEnd[rank*k:])
			for _, sl := range p.runSlots[p.a[i] : p.a[i]+p.b[i]] {
				del := (*row)(b.delivered[int(sl)*k:])
				for lane := 0; lane < k; lane++ {
					if del[lane] > re[lane] {
						re[lane] = del[lane]
					}
				}
			}
		case bpLoopback:
			re := (*row)(b.rankEnd[rank*k:])
			del := (*row)(b.delivered[int(p.a[i])*k:])
			if b.uniform {
				so, ro := b.sendOv[0], b.recvOv[0]
				for lane := 0; lane < k; lane++ {
					ready := re[lane] + so
					re[lane] = ready
					del[lane] = ready + ro
				}
			} else {
				sov, rov := (*row)(b.sendOv), (*row)(b.recvOv)
				for lane := 0; lane < k; lane++ {
					ready := re[lane] + sov[lane]
					re[lane] = ready
					del[lane] = ready + rov[lane]
				}
			}
		case bpLocal:
			re := (*row)(b.rankEnd[rank*k:])
			del := (*row)(b.delivered[int(p.a[i])*k:])
			nic := (*row)(b.nicFree[rank*k:])
			if b.uniform {
				so, ilro := b.sendOv[0], b.ilRecv[0]
				tx := b.intraTx(p.b[i], p.t[i])
				for lane := 0; lane < k; lane++ {
					ready := re[lane] + so
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + tx
					nic[lane] = nicDone
					del[lane] = nicDone + ilro
				}
			} else {
				sov := (*row)(b.sendOv)
				for lane := 0; lane < k; lane++ {
					ready := re[lane] + sov[lane]
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					nic[lane] = nicDone
					del[lane] = nicDone + ilRecv[lane]
				}
			}
		case bpRecvLocal:
			re := (*row)(b.rankEnd[rank*k:])
			dr := (*row)(b.delivered[int(p.r[i])*k:])
			del := (*row)(b.delivered[int(p.a[i])*k:])
			nic := (*row)(b.nicFree[rank*k:])
			if b.uniform {
				so, ilro := b.sendOv[0], b.ilRecv[0]
				tx := b.intraTx(p.b[i], p.t[i])
				for lane := 0; lane < k; lane++ {
					v := re[lane]
					if dr[lane] > v {
						v = dr[lane]
					}
					ready := v + so
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + tx
					nic[lane] = nicDone
					del[lane] = nicDone + ilro
				}
			} else {
				sov := (*row)(b.sendOv)
				for lane := 0; lane < k; lane++ {
					v := re[lane]
					if dr[lane] > v {
						v = dr[lane]
					}
					ready := v + sov[lane]
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					nic[lane] = nicDone
					del[lane] = nicDone + ilRecv[lane]
				}
			}
		case bpRecvWAN:
			re := (*row)(b.rankEnd[rank*k:])
			dr := (*row)(b.delivered[int(p.r[i])*k:])
			del := (*row)(b.delivered[int(p.a[i])*k:])
			nic := (*row)(b.nicFree[rank*k:])
			wan := (*row)(b.wanFree[int(p.c[i])*k:])
			gw := (*row)(b.gwFree[int(p.d[i])*k:])
			wtx := (*row)(b.wanTx(p.b[i], p.t[i], k))
			if b.uniform {
				so, ilro := b.sendOv[0], b.ilRecv[0]
				tx := b.intraTx(p.b[i], p.t[i])
				for lane := 0; lane < k; lane++ {
					v := re[lane]
					if dr[lane] > v {
						v = dr[lane]
					}
					ready := v + so
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + tx
					nic[lane] = nicDone
					s = nicDone + ilWanPer[lane]
					if wan[lane] > s {
						s = wan[lane]
					}
					wanDone := s + wtx[lane]
					wan[lane] = wanDone
					s = wanDone + wanLatCol[lane]
					if gw[lane] > s {
						s = gw[lane]
					}
					gwDone := s + tx
					gw[lane] = gwDone
					del[lane] = gwDone + ilro
				}
			} else {
				sov := (*row)(b.sendOv)
				for lane := 0; lane < k; lane++ {
					v := re[lane]
					if dr[lane] > v {
						v = dr[lane]
					}
					ready := v + sov[lane]
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					nic[lane] = nicDone
					s = nicDone + ilWanPer[lane]
					if wan[lane] > s {
						s = wan[lane]
					}
					wanDone := s + wtx[lane]
					wan[lane] = wanDone
					s = wanDone + wanLatCol[lane]
					if gw[lane] > s {
						s = gw[lane]
					}
					gwDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					gw[lane] = gwDone
					del[lane] = gwDone + ilRecv[lane]
				}
			}
		case bpWAN:
			re := (*row)(b.rankEnd[rank*k:])
			del := (*row)(b.delivered[int(p.a[i])*k:])
			nic := (*row)(b.nicFree[rank*k:])
			wan := (*row)(b.wanFree[int(p.c[i])*k:])
			gw := (*row)(b.gwFree[int(p.d[i])*k:])
			wtx := (*row)(b.wanTx(p.b[i], p.t[i], k))
			if b.uniform {
				so, ilro := b.sendOv[0], b.ilRecv[0]
				tx := b.intraTx(p.b[i], p.t[i])
				for lane := 0; lane < k; lane++ {
					ready := re[lane] + so
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + tx
					nic[lane] = nicDone
					s = nicDone + ilWanPer[lane]
					if wan[lane] > s {
						s = wan[lane]
					}
					wanDone := s + wtx[lane]
					wan[lane] = wanDone
					s = wanDone + wanLatCol[lane]
					if gw[lane] > s {
						s = gw[lane]
					}
					gwDone := s + tx
					gw[lane] = gwDone
					del[lane] = gwDone + ilro
				}
			} else {
				sov := (*row)(b.sendOv)
				for lane := 0; lane < k; lane++ {
					ready := re[lane] + sov[lane]
					re[lane] = ready
					s := ready
					if nic[lane] > s {
						s = nic[lane]
					}
					nicDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					nic[lane] = nicDone
					s = nicDone + ilWanPer[lane]
					if wan[lane] > s {
						s = wan[lane]
					}
					wanDone := s + wtx[lane]
					wan[lane] = wanDone
					s = wanDone + wanLatCol[lane]
					if gw[lane] > s {
						s = gw[lane]
					}
					gwDone := s + sim.TransmissionTime(p.t[i], b.intraBW[lane])
					gw[lane] = gwDone
					del[lane] = gwDone + ilRecv[lane]
				}
			}
		}
	}
}
