package analytic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"twolayer/internal/network"
	"twolayer/internal/sim"
)

// randomGraph builds a pseudo-random graph honouring every Validate
// invariant: sends own message records in record order, receives consume
// already-sent messages addressed to their rank exactly once, and each
// recorded pattern is satisfied by the consumed message. With wildcards
// enabled, patterns relax to any-sender and any-tag at random, which is
// what drives the matched-replay evaluator through its dynamic paths.
func randomGraph(r *rand.Rand, wildcards bool) *Graph {
	procs := 1 + r.Intn(8)
	clusters := 1 + r.Intn(procs)
	g := &Graph{
		Procs:     procs,
		Clusters:  clusters,
		ClusterOf: make([]int32, procs),
		Ref: network.Params{
			IntraLatency:        sim.Time(r.Intn(10_000)),
			IntraBandwidth:      1e6 + r.Float64()*1e8,
			WANLatency:          sim.Time(r.Intn(100_000_000)),
			WANBandwidth:        1e4 + r.Float64()*1e7,
			SendOverhead:        sim.Time(r.Intn(50_000)),
			RecvOverhead:        sim.Time(r.Intn(50_000)),
			WANPerMessage:       sim.Time(r.Intn(1_000_000)),
			WANMessageRTTFactor: r.Float64(),
		},
		RefElapsed: sim.Time(r.Int63n(1_000_000_000)),
		// Non-nil empties: the decoders materialize every slice, so a nil
		// here would break reflect.DeepEqual on graphs with no messages.
		Ops: []uint8{}, Rank: []int32{}, Arg: []int64{},
		MsgSrc: []int32{}, MsgDst: []int32{}, MsgBytes: []int64{}, MsgTag: []int64{},
		RecvFrom: []int32{}, RecvTag: []int64{}, RecvPoll: []uint8{},
	}
	for i := range g.ClusterOf {
		g.ClusterOf[i] = int32(r.Intn(clusters))
	}
	unconsumed := make([][]int32, procs) // sent, not yet received, per destination
	for target := r.Intn(400); len(g.Ops) < target; {
		rank := int32(r.Intn(procs))
		switch r.Intn(3) {
		case 0:
			g.Ops = append(g.Ops, OpSpan)
			g.Rank = append(g.Rank, rank)
			g.Arg = append(g.Arg, r.Int63n(1_000_000))
		case 1:
			m := int32(len(g.MsgSrc))
			dst := int32(r.Intn(procs))
			g.Ops = append(g.Ops, OpSend)
			g.Rank = append(g.Rank, rank)
			g.Arg = append(g.Arg, int64(m))
			g.MsgSrc = append(g.MsgSrc, rank)
			g.MsgDst = append(g.MsgDst, dst)
			g.MsgBytes = append(g.MsgBytes, r.Int63n(1<<20))
			g.MsgTag = append(g.MsgTag, int64(r.Intn(4)))
			unconsumed[dst] = append(unconsumed[dst], m)
		default:
			q := unconsumed[rank]
			if len(q) == 0 {
				continue
			}
			i := r.Intn(len(q))
			m := q[i]
			q[i] = q[len(q)-1]
			unconsumed[rank] = q[:len(q)-1]
			from, tag := g.MsgSrc[m], g.MsgTag[m]
			if wildcards && r.Intn(2) == 0 {
				from = -1
			}
			if wildcards && r.Intn(4) == 0 {
				tag = anyTag
			}
			var poll uint8
			if r.Intn(5) == 0 {
				poll = 1
			}
			g.Ops = append(g.Ops, OpRecv)
			g.Rank = append(g.Rank, rank)
			g.Arg = append(g.Arg, int64(m))
			g.RecvFrom = append(g.RecvFrom, from)
			g.RecvTag = append(g.RecvTag, tag)
			g.RecvPoll = append(g.RecvPoll, poll)
		}
	}
	return g
}

// TestBinaryRoundTrip pins the binary codec: decode(encode(g)) must
// reproduce the graph exactly for arbitrary valid graphs.
func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		g := randomGraph(r, true)
		if err := g.Validate(); err != nil {
			t.Fatalf("graph %d: generator produced invalid graph: %v", i, err)
		}
		var buf bytes.Buffer
		if err := g.EncodeBinary(&buf); err != nil {
			t.Fatalf("graph %d: encode: %v", i, err)
		}
		got, err := DecodeBinary(&buf)
		if err != nil {
			t.Fatalf("graph %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("graph %d: binary round trip diverged\n got %+v\nwant %+v", i, got, g)
		}
	}
}

// TestJSONRoundTrip pins the JSON encoding (the disk cache's outer
// format) against the in-memory graph the same way.
func TestJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		g := randomGraph(r, true)
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("graph %d: marshal: %v", i, err)
		}
		got := &Graph{}
		if err := json.Unmarshal(data, got); err != nil {
			t.Fatalf("graph %d: unmarshal: %v", i, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("graph %d: decoded graph invalid: %v", i, err)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("graph %d: JSON round trip diverged\n got %+v\nwant %+v", i, got, g)
		}
	}
}

// TestDecodeBinaryTruncated feeds every strict prefix of a valid encoding
// to the decoder: each must fail cleanly with an error, never panic or
// yield a graph.
func TestDecodeBinaryTruncated(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), true)
	var buf bytes.Buffer
	if err := g.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n++ {
		if _, err := DecodeBinary(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("decoding %d of %d bytes succeeded", n, len(data))
		}
	}
}

func TestDecodeBinaryRejectsHeader(t *testing.T) {
	if _, err := DecodeBinary(strings.NewReader("NOPE")); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	buf.WriteString(binaryMagic)
	buf.WriteByte(binaryVersion + 1)
	if _, err := DecodeBinary(&buf); err == nil {
		t.Error("unknown version accepted")
	}
}

// TestValidateRejectsCorruption spot-checks that single-field corruptions
// of a valid graph are caught before the evaluator could index with them.
func TestValidateRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	var g *Graph
	for g == nil || len(g.MsgSrc) == 0 || len(g.RecvFrom) == 0 {
		g = randomGraph(r, false)
	}
	send, recv := -1, -1
	for i, k := range g.Ops {
		if k == OpSend && send < 0 {
			send = i
		}
		if k == OpRecv && recv < 0 {
			recv = i
		}
	}
	corrupt := map[string]func(*Graph){
		"unknown op kind":      func(g *Graph) { g.Ops[0] = opKinds },
		"negative rank":        func(g *Graph) { g.Rank[0] = -1 },
		"cluster out of range": func(g *Graph) { g.ClusterOf[0] = int32(g.Clusters) },
		"send out of order":    func(g *Graph) { g.Arg[send]++ },
		"message dst invalid":  func(g *Graph) { g.MsgDst[0] = int32(g.Procs) },
		"negative size":        func(g *Graph) { g.MsgBytes[0] = -1 },
		"recv before send":     func(g *Graph) { g.Arg[recv] = int64(len(g.MsgSrc)) },
		"non-finite ref":       func(g *Graph) { g.Ref.WANMessageRTTFactor = math.NaN() },
	}
	for name, mutate := range corrupt {
		var buf bytes.Buffer
		if err := g.EncodeBinary(&buf); err != nil {
			t.Fatal(err)
		}
		c, err := DecodeBinary(&buf) // deep copy via the codec
		if err != nil {
			t.Fatal(err)
		}
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: corruption passed Validate", name)
		}
	}
}

// TestEvalDeterminism: both evaluators are pure functions of (graph,
// params) — repeated solves and fresh evaluators must agree exactly,
// including after the frozen evaluator's incremental snapshot kicks in.
func TestEvalDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		g := randomGraph(r, true)
		p := g.Ref
		p.WANLatency = p.WANLatency*3 + 1
		p.WANBandwidth /= 2
		ev := NewEval(g)
		frozen, matched := ev.Solve(p), ev.SolveMatched(p)
		if again := ev.Solve(p); again != frozen {
			t.Fatalf("graph %d: Solve not deterministic: %d then %d", i, frozen, again)
		}
		if again := ev.SolveMatched(p); again != matched {
			t.Fatalf("graph %d: SolveMatched not deterministic: %d then %d", i, matched, again)
		}
		fresh := NewEval(g)
		if got := fresh.SolveMatched(p); got != matched {
			t.Fatalf("graph %d: fresh evaluator disagrees: %d vs %d", i, got, matched)
		}
		if got := fresh.Solve(p); got != frozen {
			t.Fatalf("graph %d: fresh frozen solve disagrees: %d vs %d", i, got, frozen)
		}
	}
}

// TestConcurrentEvalsShareGraph runs independent evaluators over one
// shared graph from several goroutines — the documented concurrency
// contract (read-only graph, per-goroutine Eval). Run under -race this
// is the regression test for unsynchronized graph mutation.
func TestConcurrentEvalsShareGraph(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(6)), true)
	p := g.Ref
	p.WANLatency *= 5
	want := NewEval(g).SolveMatched(p)
	wantFrozen := NewEval(g).Solve(p)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			ev := NewEval(g)
			for i := 0; i < 10; i++ {
				if got := ev.SolveMatched(p); got != want {
					done <- fmt.Errorf("SolveMatched %d, want %d", got, want)
					return
				}
				if got := ev.Solve(p); got != wantFrozen {
					done <- fmt.Errorf("Solve %d, want %d", got, wantFrozen)
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
