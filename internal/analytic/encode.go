package analytic

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"twolayer/internal/network"
	"twolayer/internal/sim"
)

// Binary graph format: the magic, a version, then the graph fields in
// declaration order — scalars and times as signed varints, float64s as
// fixed 8-byte IEEE bits, slices as a uvarint count followed by elements
// (Ops as raw bytes). The format is self-contained and validated on
// decode; content addressing and fingerprint gating live in the cache
// layer above. JSON encoding needs no code here: the Graph's exported
// fields marshal directly (with []uint8 as base64), and the round-trip
// property test pins both encodings against each other.
const (
	binaryMagic   = "TLAG"
	binaryVersion = 1
)

// EncodeBinary writes the graph in the binary format.
func (g *Graph) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		bw.Write(scratch[:n])
	}
	putVarint := func(v int64) {
		n := binary.PutVarint(scratch[:], v)
		bw.Write(scratch[:n])
	}
	putFloat := func(f float64) {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(f))
		bw.Write(scratch[:8])
	}
	putUvarint(binaryVersion)
	putUvarint(uint64(g.Procs))
	putUvarint(uint64(g.Clusters))
	for _, c := range g.ClusterOf {
		putVarint(int64(c))
	}
	putVarint(int64(g.Ref.IntraLatency))
	putFloat(g.Ref.IntraBandwidth)
	putVarint(int64(g.Ref.WANLatency))
	putFloat(g.Ref.WANBandwidth)
	putVarint(int64(g.Ref.SendOverhead))
	putVarint(int64(g.Ref.RecvOverhead))
	putVarint(int64(g.Ref.WANPerMessage))
	putFloat(g.Ref.WANMessageRTTFactor)
	putVarint(int64(g.RefElapsed))
	putUvarint(uint64(len(g.Ops)))
	bw.Write(g.Ops)
	for _, r := range g.Rank {
		putVarint(int64(r))
	}
	for _, a := range g.Arg {
		putVarint(a)
	}
	putUvarint(uint64(len(g.MsgSrc)))
	for _, s := range g.MsgSrc {
		putVarint(int64(s))
	}
	for _, d := range g.MsgDst {
		putVarint(int64(d))
	}
	for _, b := range g.MsgBytes {
		putVarint(b)
	}
	for _, t := range g.MsgTag {
		putVarint(t)
	}
	putUvarint(uint64(len(g.RecvFrom)))
	for _, f := range g.RecvFrom {
		putVarint(int64(f))
	}
	for _, t := range g.RecvTag {
		putVarint(t)
	}
	bw.Write(g.RecvPoll)
	return bw.Flush()
}

// DecodeBinary reads a graph in the binary format and validates it.
func DecodeBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("analytic: reading graph magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("analytic: bad graph magic %q", magic)
	}
	var firstErr error
	getUvarint := func() uint64 {
		v, err := binary.ReadUvarint(br)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	getVarint := func() int64 {
		v, err := binary.ReadVarint(br)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	getFloat := func() float64 {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return 0
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	getCount := func(what string) int {
		v := getUvarint()
		if v > math.MaxInt32 && firstErr == nil {
			firstErr = fmt.Errorf("analytic: implausible %s count %d", what, v)
		}
		return int(v)
	}
	if v := getUvarint(); v != binaryVersion && firstErr == nil {
		return nil, fmt.Errorf("analytic: unsupported graph format version %d", v)
	}
	g := &Graph{}
	g.Procs = getCount("proc")
	g.Clusters = getCount("cluster")
	if firstErr != nil {
		return nil, fmt.Errorf("analytic: decoding graph header: %w", firstErr)
	}
	if g.Procs <= 0 || g.Procs > math.MaxInt32 {
		return nil, fmt.Errorf("analytic: implausible proc count %d", g.Procs)
	}
	g.ClusterOf = make([]int32, g.Procs)
	for i := range g.ClusterOf {
		g.ClusterOf[i] = int32(getVarint())
	}
	g.Ref = network.Params{
		IntraLatency:        sim.Time(getVarint()),
		IntraBandwidth:      getFloat(),
		WANLatency:          sim.Time(getVarint()),
		WANBandwidth:        getFloat(),
		SendOverhead:        sim.Time(getVarint()),
		RecvOverhead:        sim.Time(getVarint()),
		WANPerMessage:       sim.Time(getVarint()),
		WANMessageRTTFactor: getFloat(),
	}
	g.RefElapsed = sim.Time(getVarint())
	ops := getCount("operation")
	if firstErr != nil {
		return nil, fmt.Errorf("analytic: decoding graph: %w", firstErr)
	}
	g.Ops = make([]uint8, ops)
	if _, err := io.ReadFull(br, g.Ops); err != nil {
		return nil, fmt.Errorf("analytic: decoding operations: %w", err)
	}
	g.Rank = make([]int32, ops)
	for i := range g.Rank {
		g.Rank[i] = int32(getVarint())
	}
	g.Arg = make([]int64, ops)
	for i := range g.Arg {
		g.Arg[i] = getVarint()
	}
	msgs := getCount("message")
	if firstErr != nil {
		return nil, fmt.Errorf("analytic: decoding graph: %w", firstErr)
	}
	g.MsgSrc = make([]int32, msgs)
	for i := range g.MsgSrc {
		g.MsgSrc[i] = int32(getVarint())
	}
	g.MsgDst = make([]int32, msgs)
	for i := range g.MsgDst {
		g.MsgDst[i] = int32(getVarint())
	}
	g.MsgBytes = make([]int64, msgs)
	for i := range g.MsgBytes {
		g.MsgBytes[i] = getVarint()
	}
	g.MsgTag = make([]int64, msgs)
	for i := range g.MsgTag {
		g.MsgTag[i] = getVarint()
	}
	recvs := getCount("receive pattern")
	if firstErr != nil {
		return nil, fmt.Errorf("analytic: decoding graph: %w", firstErr)
	}
	g.RecvFrom = make([]int32, recvs)
	for i := range g.RecvFrom {
		g.RecvFrom[i] = int32(getVarint())
	}
	g.RecvTag = make([]int64, recvs)
	for i := range g.RecvTag {
		g.RecvTag[i] = getVarint()
	}
	g.RecvPoll = make([]uint8, recvs)
	if _, err := io.ReadFull(br, g.RecvPoll); err != nil {
		return nil, fmt.Errorf("analytic: decoding receive patterns: %w", err)
	}
	if firstErr != nil {
		return nil, fmt.Errorf("analytic: decoding graph: %w", firstErr)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
