package analytic

import (
	"errors"
	"fmt"
	"math"

	"twolayer/internal/network"
	"twolayer/internal/sim"
	"twolayer/internal/topology"
	"twolayer/internal/trace"
)

// Recorder is a trace sink that builds the dependency Graph of a run. It
// implements trace.OpSink, so passing it as Options.Trace makes the
// runtime stream compute spans, messages and receive matchings into it;
// the runtime rejects runs the replay model cannot represent (fault
// injection, the reliable transport, Configure hooks).
//
// Recording appends to flat arrays — amortized growth, no per-node
// allocation in steady state — and never perturbs the simulation: the
// sink only observes, and attaching it leaves every simulated quantity
// bit-identical (pinned by TestGoldenRunsWithRecorder in package core).
type Recorder struct {
	g   Graph
	err error

	// tag buffers the value from RecordSendTag until the send's
	// RecordMessage arrives (the network observer does not know tags);
	// tagPending tracks that a value is waiting.
	tag        int64
	tagPending bool
}

// NewRecorder prepares a recorder for a run on topo at the reference
// network point ref.
func NewRecorder(topo *topology.Topology, ref network.Params) *Recorder {
	r := &Recorder{}
	r.g.Procs = topo.Procs()
	r.g.Clusters = topo.Clusters()
	r.g.ClusterOf = make([]int32, topo.Procs())
	for rank := range r.g.ClusterOf {
		r.g.ClusterOf[rank] = int32(topo.ClusterOf(rank))
	}
	r.g.Ref = ref
	return r
}

// fail records the first problem seen; recording continues so the run is
// never perturbed, but Finish will refuse to hand out the graph.
func (r *Recorder) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// appendOp grows the three operation arrays in lockstep.
func (r *Recorder) appendOp(kind uint8, rank int32, arg int64) {
	if len(r.g.Ops) >= math.MaxInt32 {
		r.fail("analytic: run exceeds %d recordable operations", math.MaxInt32)
		return
	}
	r.g.Ops = append(r.g.Ops, kind)
	r.g.Rank = append(r.g.Rank, rank)
	r.g.Arg = append(r.g.Arg, arg)
}

// RecordSpan appends a compute span. Only the duration matters: the span's
// position in the operation stream fixes its place on the rank's timeline.
func (r *Recorder) RecordSpan(s trace.Span) {
	if s.Rank < 0 || s.Rank >= r.g.Procs {
		r.fail("analytic: span on invalid rank %d", s.Rank)
		return
	}
	if s.End < s.Start {
		r.fail("analytic: negative span on rank %d", s.Rank)
		return
	}
	r.appendOp(OpSpan, int32(s.Rank), int64(s.End-s.Start))
}

// RecordMessage appends a message record and its owning send operation.
// The network observer invokes it synchronously inside the send call, so
// message order is global send order — the order the shared FIFO links
// were booked in, which the evaluator replays.
func (r *Recorder) RecordMessage(m trace.Message) {
	if m.Kind != trace.KindData || m.Dup || m.Dropped {
		// Transport or fault traffic means the run violates the recorder's
		// preconditions; the runtime should have refused it.
		r.fail("analytic: unexpected %v message (dup=%v dropped=%v)", m.Kind, m.Dup, m.Dropped)
		return
	}
	if m.Src < 0 || m.Src >= r.g.Procs || m.Dst < 0 || m.Dst >= r.g.Procs {
		r.fail("analytic: message between invalid ranks %d -> %d", m.Src, m.Dst)
		return
	}
	if !r.tagPending {
		r.fail("analytic: message %d -> %d observed without a send tag", m.Src, m.Dst)
		return
	}
	idx := int64(len(r.g.MsgSrc))
	r.g.MsgSrc = append(r.g.MsgSrc, int32(m.Src))
	r.g.MsgDst = append(r.g.MsgDst, int32(m.Dst))
	r.g.MsgBytes = append(r.g.MsgBytes, m.Bytes)
	r.g.MsgTag = append(r.g.MsgTag, r.tag)
	r.tagPending = false
	r.appendOp(OpSend, int32(m.Src), idx)
}

// RecordSendTag buffers the application-level tag of the next message; the
// runtime calls it immediately before the send that triggers RecordMessage.
func (r *Recorder) RecordSendTag(tag int64) {
	if r.tagPending {
		r.fail("analytic: two send tags without an intervening message")
		return
	}
	r.tag, r.tagPending = tag, true
}

// RecordRecv appends a receive operation consuming message msg, together
// with the selection pattern that matched it.
func (r *Recorder) RecordRecv(rank int, msg int64, from int, tag int64, poll bool) {
	if msg < 0 || msg >= int64(len(r.g.MsgSrc)) {
		r.fail("analytic: recv of unrecorded message %d (have %d)", msg, len(r.g.MsgSrc))
		return
	}
	if int(r.g.MsgDst[msg]) != rank {
		r.fail("analytic: rank %d consumed message %d addressed to %d", rank, msg, r.g.MsgDst[msg])
		return
	}
	if from < 0 {
		from = -1
	}
	var p uint8
	if poll {
		p = 1
	}
	r.g.RecvFrom = append(r.g.RecvFrom, int32(from))
	r.g.RecvTag = append(r.g.RecvTag, tag)
	r.g.RecvPoll = append(r.g.RecvPoll, p)
	r.appendOp(OpRecv, int32(rank), msg)
}

// RecordTransport rejects reliable-transport activity: its retransmissions
// are invisible to the replay model.
func (r *Recorder) RecordTransport(ts trace.TransportStats) {
	if ts != (trace.TransportStats{}) {
		r.fail("analytic: run used the reliable transport (%+v)", ts)
	}
}

// Finish seals the recording with the run's completion time and returns
// the graph. The recorder must not be reused afterwards.
func (r *Recorder) Finish(elapsed sim.Time) (*Graph, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.tagPending {
		return nil, errors.New("analytic: send tag recorded without its message")
	}
	if elapsed <= 0 {
		return nil, errors.New("analytic: recording finished with non-positive elapsed time")
	}
	r.g.RefElapsed = elapsed
	if err := r.g.Validate(); err != nil {
		return nil, err
	}
	return &r.g, nil
}
