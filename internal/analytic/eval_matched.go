package analytic

import (
	"math"

	"twolayer/internal/network"
	"twolayer/internal/sim"
)

// The frozen replay in Solve keeps the reference run's receive matchings:
// whichever queued message a wildcard receive consumed at the reference
// point, it consumes at every grid point. That is exact at the reference
// and accurate for deterministic communication patterns, but applications
// that post AnySender receives (Water's result collection, unoptimized
// ASP's broadcast forwarding) see their message arrival ORDER change with
// the wide-area parameters, and pinning the reference order misassigns
// multi-millisecond waits.
//
// SolveMatched fixes that: it re-runs the recorded per-rank operation
// streams as a small discrete-event simulation and lets each receive match
// whichever recorded message satisfies its recorded selection pattern
// first under the candidate timings. Message set, per-rank program order
// and compute spans stay frozen (the application's control flow is not
// re-derived — a genuinely adaptive app like branch-and-bound TSP remains
// approximate); only the matching and the link booking order are dynamic.

// timeInf is an unreachable wake time for parked ranks.
const timeInf = sim.Time(math.MaxInt64)

// ensureMatched builds the per-rank operation streams and the op-to-pattern
// map on first use, plus the reusable replay state. The streams (rankOps,
// opPat) are read-only once built and shared with clones; the scratch is
// per-evaluator (see allocMatchedScratch).
func (e *Eval) ensureMatched() {
	if e.rankOps == nil {
		g := e.g
		counts := make([]int32, g.Procs)
		for _, r := range g.Rank {
			counts[r]++
		}
		e.rankOps = make([][]int32, g.Procs)
		for r := range e.rankOps {
			e.rankOps[r] = make([]int32, 0, counts[r])
		}
		e.opPat = make([]int32, len(g.Ops))
		pat := int32(0)
		for i, k := range g.Ops {
			e.rankOps[g.Rank[i]] = append(e.rankOps[g.Rank[i]], int32(i))
			if k == OpRecv {
				e.opPat[i] = pat
				pat++
			} else {
				e.opPat[i] = -1
			}
		}
	}
	if e.mPos == nil {
		e.allocMatchedScratch()
	}
}

// allocMatchedScratch allocates the per-solve matched-replay scratch. A
// clone that inherits the shared streams still needs its own.
func (e *Eval) allocMatchedScratch() {
	g := e.g
	e.mPos = make([]int32, g.Procs)
	e.mAtRecv = make([]bool, g.Procs)
	e.mAwait = make([]int64, g.Procs)
	e.mWake = make([]sim.Time, g.Procs)
	e.mWakeOp = make([]int32, g.Procs)
	e.pending = make([][]int32, g.Procs)
	e.consumed = make([]bool, len(g.MsgSrc))
}

// The wake queue: at most one pending wakeup exists per rank (mWake[r],
// keyed (time, recorded op index) — record order is the simulator's
// execution order, so the tie-break reproduces the simulator's
// interleaving of same-time events at the reference point; op indices are
// globally unique, so live keys never tie). A flat per-rank array beats
// both a binary heap and a tournament tree here: waking a rank is an
// in-place improvement plus one cached-min compare, the running rank's
// per-op frontier test is two compares against the cached minimum, and a
// pop rescans a few dozen contiguous slots — cheaper in practice than
// chasing pointer-shaped structures at these rank counts.

// wake schedules (or improves) rank r's wakeup and maintains the cached
// minimum. Callers only ever move wakeups earlier.
func (e *Eval) wake(r int32, t sim.Time, op int32) {
	e.mWake[r] = t
	e.mWakeOp[r] = op
	if t < e.minT || (t == e.minT && op < e.minOp) {
		e.minT, e.minOp, e.minRank = t, op, r
	}
}

// rescanMin recomputes the cached minimum after a wakeup is consumed.
// Parked ranks carry timeInf and lose to any live one.
func (e *Eval) rescanMin() {
	minT, minOp, minRank := timeInf, int32(0), int32(-1)
	for r, w := range e.mWake {
		if w > minT || w == timeInf {
			continue
		}
		if w < minT || e.mWakeOp[r] < minOp {
			minT, minOp, minRank = w, e.mWakeOp[r], int32(r)
		}
	}
	e.minT, e.minOp, e.minRank = minT, minOp, minRank
}

// take consumes message m from rank r's pending set.
func (e *Eval) take(r, m int32) {
	e.consumed[m] = true
	pl := e.pending[r]
	for j, pm := range pl {
		if pm == m {
			pl[j] = pl[len(pl)-1]
			e.pending[r] = pl[:len(pl)-1]
			return
		}
	}
}

// notifyMatched re-wakes dst if it is blocked at a receive the newly
// delivered message m satisfies — or if m is the exact message a poll is
// waiting for. An earlier match than the currently scheduled wakeup
// supersedes it.
func (e *Eval) notifyMatched(dst, m int32, d sim.Time) {
	if !e.mAtRecv[dst] {
		return
	}
	g := e.g
	if aw := e.mAwait[dst]; aw >= 0 {
		if aw != int64(m) {
			return
		}
	} else {
		i := e.rankOps[dst][e.mPos[dst]]
		pat := e.opPat[i]
		if f := g.RecvFrom[pat]; f >= 0 && f != g.MsgSrc[m] {
			return
		}
		tg := g.RecvTag[pat]
		if tg == anyTag && e.mNarrow {
			tg = g.MsgTag[g.Arg[i]] // same narrowing as the receive itself
		}
		if tg != anyTag && tg != g.MsgTag[m] {
			return
		}
	}
	wakeAt := e.rankEnd[dst]
	if d > wakeAt {
		wakeAt = d
	}
	if wakeAt >= e.mWake[dst] {
		return
	}
	e.wake(dst, wakeAt, e.rankOps[dst][e.mPos[dst]])
}

// allSpecific reports whether every recorded receive pins both sender and
// tag (or is a poll, which replays frozen regardless). Such a graph gives
// the dynamic matcher no freedom: messages of one (sender, tag) kind ride
// the same FIFO link chain in program order, so their delivery order —
// and therefore every matching — is identical at every parameter point,
// and the frozen pass already computes the matched answer exactly.
func (e *Eval) allSpecific() bool {
	g := e.g
	for pat := range g.RecvFrom {
		if g.RecvPoll[pat] != 0 {
			continue
		}
		if g.RecvFrom[pat] < 0 || g.RecvTag[pat] == anyTag {
			return false
		}
	}
	return true
}

// SolveMatched predicts the completion time under p with dynamic receive
// matching (see the package comment above). It is a full replay every time
// — no incremental prefix reuse — unless the graph has no wildcard
// receives at all, in which case the far cheaper frozen pass is provably
// identical and is used instead (still counted as a matched solve). A
// replay can stall when a wildcard receive consumes a message a later
// receive was recorded to need; the solver then escalates through two
// recovery tiers, counted in Stats: first a narrowed pass where
// tag-wildcard receives only reorder within their recorded message kind,
// then the frozen Solve.
func (e *Eval) SolveMatched(p network.Params) sim.Time {
	if !e.mSpecificSet {
		e.mSpecific = e.allSpecific()
		e.mSpecificSet = true
	}
	if e.mSpecific {
		e.matchedSolves++
		return e.Solve(p)
	}
	if t, ok := e.solveMatched(p, false); ok {
		e.matchedSolves++
		return t
	}
	if t, ok := e.solveMatched(p, true); ok {
		e.matchedSolves++
		e.matchedNarrowed++
		return t
	}
	e.matchedFallbacks++
	return e.Solve(p)
}

func (e *Eval) solveMatched(p network.Params, narrow bool) (sim.Time, bool) {
	e.ensureMatched()
	e.mNarrow = narrow
	g := e.g
	clearTimes(e.rankEnd)
	clearTimes(e.nicFree)
	clearTimes(e.gwFree)
	clearTimes(e.wanFree)
	for i := range e.delivered {
		e.delivered[i] = -1
	}
	for i := range e.consumed {
		e.consumed[i] = false
	}
	e.minT, e.minOp, e.minRank = timeInf, 0, -1
	for r := 0; r < g.Procs; r++ {
		e.mPos[r] = 0
		e.mAtRecv[r] = false
		e.mAwait[r] = -1
		e.mWake[r] = timeInf
		e.pending[r] = e.pending[r][:0]
		if len(e.rankOps[r]) > 0 {
			e.wake(int32(r), 0, e.rankOps[r][0])
		}
	}

	c := g.Clusters
	rttExtra := sim.Time(float64(2*p.WANLatency) * p.WANMessageRTTFactor)
	var executed int64
	for e.minRank >= 0 {
		r := e.minRank
		e.mWake[r] = timeInf // consume the wakeup
		e.rescanMin()        // cached minimum now excludes the running rank
		e.mAtRecv[r] = false
		e.mAwait[r] = -1
		ops := e.rankOps[r]
		pos := e.mPos[r]
		t := e.rankEnd[r]
	run:
		for int(pos) < len(ops) {
			i := ops[pos]
			// A rank may run ahead of global time through compute spans,
			// local sends and receive commits: spans and local sends touch
			// only its own clock and its own NIC link, and a receive's
			// commit rule below checks the global frontier itself. Only a
			// wide-area send must wait its global turn (see its case).
			switch g.Ops[i] {
			case OpSpan:
				t += sim.Time(g.Arg[i])
				pos++
			case OpSend:
				m := g.Arg[i]
				dst := g.MsgDst[m]
				wan := false
				if dst != r {
					wan = g.ClusterOf[r] != g.ClusterOf[dst]
				}
				if wan && (e.minT < t || (e.minT == t && e.minOp < i)) {
					// The wide-area pipe and the destination gateway are
					// shared FIFO links, booked eagerly at send time as in
					// the simulator — those bookings must happen in global
					// time order. Every queued wakeup lower-bounds its
					// rank's future send times, so waiting until this send
					// is globally next reproduces the simulator's order.
					e.wake(r, t, i)
					break run
				}
				size := g.MsgBytes[m]
				ready := t + p.SendOverhead
				t = ready
				var d sim.Time
				if dst == r {
					d = ready + p.RecvOverhead
				} else {
					nicDone := reserve(&e.nicFree[r], ready, size, p.IntraBandwidth, 0)
					localArrive := nicDone + p.IntraLatency
					if wan {
						sc, dc := g.ClusterOf[r], g.ClusterOf[dst]
						wanDone := reserve(&e.wanFree[int(sc)*c+int(dc)],
							localArrive+p.WANPerMessage, size, p.WANBandwidth, rttExtra)
						gwDone := reserve(&e.gwFree[dc], wanDone+p.WANLatency, size, p.IntraBandwidth, 0)
						d = gwDone + p.IntraLatency + p.RecvOverhead
					} else {
						d = localArrive + p.RecvOverhead
					}
				}
				e.delivered[m] = d
				e.pending[dst] = append(e.pending[dst], int32(m))
				pos++
				e.notifyMatched(dst, int32(m), d)
			case OpRecv:
				pat := e.opPat[i]
				if g.RecvPoll[pat] != 0 {
					// Poll hits keep their recorded matching: a non-blocking
					// receive that found a different message (or none) would
					// change control flow, which replay cannot represent.
					m := int32(g.Arg[i])
					if e.consumed[m] {
						e.matchedConflicts++
						pos++
						break
					}
					if e.delivered[m] < 0 {
						// Recorded message not sent yet: wait for it — the
						// frozen hard edge.
						e.mAtRecv[r] = true
						e.mAwait[r] = int64(m)
						break run
					}
					e.take(r, m)
					if d := e.delivered[m]; d > t {
						t = d
					}
					pos++
					break
				}
				from, tag := g.RecvFrom[pat], g.RecvTag[pat]
				if tag == anyTag && e.mNarrow {
					// Narrowed pass: reorder only within the recorded
					// message's kind, so a tag-wildcard receive cannot steal
					// a message a later specific-tag receive needs.
					tag = g.MsgTag[g.Arg[i]]
				}
				best, bestD := int32(-1), sim.Time(0)
				for _, pm := range e.pending[r] {
					if from >= 0 && g.MsgSrc[pm] != from {
						continue
					}
					if tag != anyTag && g.MsgTag[pm] != tag {
						continue
					}
					if d := e.delivered[pm]; best < 0 || d < bestD || (d == bestD && pm < best) {
						best, bestD = pm, d
					}
				}
				if best >= 0 {
					// Commit only if no rank can still produce an earlier
					// match: every queued wakeup is at bestD or later, and
					// an unexecuted send delivers no earlier than its
					// sender's wakeup. (The candidate itself may arrive
					// after t — a blocking receive waits for the earliest
					// matching arrival, which this minimum then is.)
					if e.minT >= bestD {
						e.take(r, best)
						if bestD > t {
							t = bestD
						}
						pos++
						break
					}
					// Re-pose the receive when the candidate arrives; an
					// earlier match appearing meanwhile re-wakes us sooner.
					e.mAtRecv[r] = true
					e.wake(r, bestD, i)
					break run
				}
				// Nothing matches yet: park until a matching send shows up.
				e.mAtRecv[r] = true
				break run
			}
			executed++
		}
		e.mPos[r] = pos
		e.rankEnd[r] = t
	}
	e.opsEvaluated += executed

	for r := 0; r < g.Procs; r++ {
		if int(e.mPos[r]) < len(e.rankOps[r]) {
			return 0, false // stalled: the caller escalates
		}
	}
	var elapsed sim.Time
	for _, t := range e.rankEnd {
		if t > elapsed {
			elapsed = t
		}
	}
	return elapsed, true
}

// FrozenAccurate reports whether the frozen replay tracks the matched
// replay within relTol (relative error, e.g. 0.0167 for 1.67%) at every
// probe point. Graphs whose receives all pin sender and tag pass trivially
// (the two replays are provably identical there). When the probes pass,
// a sweep can answer its whole grid with the far cheaper — and
// incremental — frozen pass without giving up matched-mode accuracy
// beyond relTol: the probes are chosen at the grid corners, where the two
// replays diverge first when they diverge at all.
func (e *Eval) FrozenAccurate(probes []network.Params, relTol float64) bool {
	if !e.mSpecificSet {
		e.mSpecific = e.allSpecific()
		e.mSpecificSet = true
	}
	if e.mSpecific {
		return true
	}
	for _, p := range probes {
		m := e.SolveMatched(p)
		f := e.Solve(p)
		if m <= 0 {
			if f != m {
				return false
			}
			continue
		}
		d := float64(f-m) / float64(m)
		if d < 0 {
			d = -d
		}
		if d > relTol {
			return false
		}
	}
	return true
}

// SensitivityMatched computes the latency/bandwidth decomposition at p
// using the matched replay.
func (e *Eval) SensitivityMatched(p network.Params) Sensitivity {
	s := Sensitivity{Elapsed: e.SolveMatched(p)}
	zeroLat := p
	zeroLat.WANLatency = 0
	s.LatencyCost = s.Elapsed - e.SolveMatched(zeroLat)
	infBW := p
	infBW.WANBandwidth = math.MaxFloat64
	s.BandwidthCost = s.Elapsed - e.SolveMatched(infBW)
	return s
}
