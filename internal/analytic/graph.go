// Package analytic predicts application completion times across the
// wide-area parameter grid from a single traced run, following the LLAMP
// line of work: record the run's dependency structure once at a reference
// network point, then re-cost the wide-area edges for any candidate
// (latency, bandwidth) and take the critical path. Sensitivity sweeps drop
// from O(grid × run) to O(run + grid × solve).
//
// The graph is the exact operation stream of the recorded run: per-rank
// compute spans, send operations (each owning one message record), and
// receive operations naming the message they consumed. Operations appear
// in simulation execution order, which is a topological order of the
// dependency DAG, so the evaluator is a single forward pass over flat
// arrays — no pointers, no per-node allocation, int32 handles throughout.
//
// What is frozen at recording time — and therefore approximated when the
// evaluator extrapolates away from the reference point — is the
// application's behaviour: which messages are sent, how much computation
// happens, which queued message each receive matches, and the order in
// which sends book the shared FIFO links (NICs, wide-area pipes,
// gateways). At the reference point itself the replay is exact, bit for
// bit; the differential tests in package core measure the drift elsewhere.
package analytic

import (
	"fmt"
	"math"

	"twolayer/internal/network"
	"twolayer/internal/sim"
)

// anyTag mirrors the runtime's AnyTag sentinel (package par reserves -1:
// real tags are non-negative application values or other negatives).
const anyTag int64 = -1

// Operation kinds. Stored in Graph.Ops; one byte per operation.
const (
	// OpSpan is a compute span: Rank computed for Arg nanoseconds.
	OpSpan uint8 = iota
	// OpSend is a send call by Rank; Arg indexes the message records.
	// The send advances the rank's clock by the software send overhead
	// and books the message onto its links.
	OpSend
	// OpRecv is a receive by Rank consuming message Arg: the rank's clock
	// advances to the message's delivery time if it has not passed it.
	OpRecv
	opKinds // count of valid kinds, for validation
)

// Graph is the recorded dependency structure of one run: parallel arrays
// of operations (execution order) and of messages (send order). All
// handles are indices; MsgSrc/MsgDst/MsgBytes are one entry per message,
// Ops/Rank/Arg one entry per operation.
type Graph struct {
	// Procs and Clusters mirror the recorded topology; ClusterOf maps each
	// rank to its cluster.
	Procs     int     `json:"procs"`
	Clusters  int     `json:"clusters"`
	ClusterOf []int32 `json:"cluster_of"`
	// Ref is the network point the run was simulated at; RefElapsed its
	// completion time. Solve(Ref) must reproduce RefElapsed exactly — any
	// difference means the graph is corrupt or the replay model has
	// drifted from the simulator.
	Ref        network.Params `json:"ref"`
	RefElapsed sim.Time       `json:"ref_elapsed"`

	// Ops, Rank and Arg describe the operations: Ops[i] is the kind,
	// Rank[i] the acting rank, Arg[i] the span duration (OpSpan) or the
	// message index (OpSend, OpRecv).
	Ops  []uint8 `json:"ops"`
	Rank []int32 `json:"rank"`
	Arg  []int64 `json:"arg"`

	// Per-message records, indexed by send order. MsgTag is the
	// application-level tag, needed to re-derive receive matchings; the
	// runtime reserves -1 (its AnyTag sentinel), so every recorded tag is
	// an actual value.
	MsgSrc   []int32 `json:"msg_src"`
	MsgDst   []int32 `json:"msg_dst"`
	MsgBytes []int64 `json:"msg_bytes"`
	MsgTag   []int64 `json:"msg_tag"`

	// Per-receive records, indexed by the ordinal of the OpRecv among the
	// operations: the selection pattern (RecvFrom < 0 matches any sender;
	// RecvTag is the runtime's tag value) and whether the receive was a
	// non-blocking poll. The pattern is what lets the matched-replay
	// evaluator re-derive wildcard matchings under different timings;
	// Arg still records the message the reference run actually consumed.
	RecvFrom []int32 `json:"recv_from"`
	RecvTag  []int64 `json:"recv_tag"`
	RecvPoll []uint8 `json:"recv_poll"`
}

// Messages returns the number of recorded messages.
func (g *Graph) Messages() int { return len(g.MsgSrc) }

// Nodes returns the number of recorded operations.
func (g *Graph) Nodes() int { return len(g.Ops) }

// Validate bounds-checks every handle in the graph so the evaluator can
// index without further checks. A decoded graph must be validated before
// use; recorder-built graphs satisfy this by construction.
func (g *Graph) Validate() error {
	if g.Procs <= 0 || g.Clusters <= 0 || g.Clusters > g.Procs {
		return fmt.Errorf("analytic: bad shape: %d procs, %d clusters", g.Procs, g.Clusters)
	}
	if len(g.ClusterOf) != g.Procs {
		return fmt.Errorf("analytic: cluster map has %d entries for %d procs", len(g.ClusterOf), g.Procs)
	}
	for r, c := range g.ClusterOf {
		if c < 0 || int(c) >= g.Clusters {
			return fmt.Errorf("analytic: rank %d mapped to cluster %d of %d", r, c, g.Clusters)
		}
	}
	if len(g.Rank) != len(g.Ops) || len(g.Arg) != len(g.Ops) {
		return fmt.Errorf("analytic: op arrays disagree: %d kinds, %d ranks, %d args",
			len(g.Ops), len(g.Rank), len(g.Arg))
	}
	if len(g.MsgDst) != len(g.MsgSrc) || len(g.MsgBytes) != len(g.MsgSrc) || len(g.MsgTag) != len(g.MsgSrc) {
		return fmt.Errorf("analytic: message arrays disagree: %d src, %d dst, %d bytes, %d tags",
			len(g.MsgSrc), len(g.MsgDst), len(g.MsgBytes), len(g.MsgTag))
	}
	for i := range g.MsgSrc {
		if s := g.MsgSrc[i]; s < 0 || int(s) >= g.Procs {
			return fmt.Errorf("analytic: message %d from invalid rank %d", i, s)
		}
		if d := g.MsgDst[i]; d < 0 || int(d) >= g.Procs {
			return fmt.Errorf("analytic: message %d to invalid rank %d", i, d)
		}
		if g.MsgBytes[i] < 0 {
			return fmt.Errorf("analytic: message %d has negative size %d", i, g.MsgBytes[i])
		}
	}
	if len(g.RecvTag) != len(g.RecvFrom) || len(g.RecvPoll) != len(g.RecvFrom) {
		return fmt.Errorf("analytic: receive-pattern arrays disagree: %d from, %d tag, %d poll",
			len(g.RecvFrom), len(g.RecvTag), len(g.RecvPoll))
	}
	sends, recvs := 0, 0
	for i, k := range g.Ops {
		if k >= opKinds {
			return fmt.Errorf("analytic: op %d has unknown kind %d", i, k)
		}
		if r := g.Rank[i]; r < 0 || int(r) >= g.Procs {
			return fmt.Errorf("analytic: op %d acts for invalid rank %d", i, r)
		}
		switch k {
		case OpSpan:
			if g.Arg[i] < 0 {
				return fmt.Errorf("analytic: op %d is a negative span (%d ns)", i, g.Arg[i])
			}
		case OpSend:
			// Sends own message records in order: the j-th send op must
			// reference message j, or replay state diverges from recording.
			if g.Arg[i] != int64(sends) {
				return fmt.Errorf("analytic: send op %d references message %d, want %d", i, g.Arg[i], sends)
			}
			if sends >= len(g.MsgSrc) {
				return fmt.Errorf("analytic: send op %d beyond the %d recorded messages", i, len(g.MsgSrc))
			}
			if g.Rank[i] != g.MsgSrc[sends] {
				return fmt.Errorf("analytic: send op %d by rank %d but message %d is from %d",
					i, g.Rank[i], sends, g.MsgSrc[sends])
			}
			sends++
		case OpRecv:
			// The consumed message must already have been sent: record
			// order is execution order and delivery follows the send.
			if m := g.Arg[i]; m < 0 || m >= int64(sends) {
				return fmt.Errorf("analytic: recv op %d consumes message %d, only %d sent", i, g.Arg[i], sends)
			}
			if g.MsgDst[g.Arg[i]] != g.Rank[i] {
				return fmt.Errorf("analytic: recv op %d by rank %d consumes message %d addressed to %d",
					i, g.Rank[i], g.Arg[i], g.MsgDst[g.Arg[i]])
			}
			if recvs >= len(g.RecvFrom) {
				return fmt.Errorf("analytic: recv op %d beyond the %d recorded patterns", i, len(g.RecvFrom))
			}
			// The reference matching must satisfy the recorded pattern, or
			// the pattern arrays are misaligned with the operations.
			if f := g.RecvFrom[recvs]; f >= 0 && f != g.MsgSrc[g.Arg[i]] {
				return fmt.Errorf("analytic: recv op %d pattern from=%d but consumed message %d is from %d",
					i, f, g.Arg[i], g.MsgSrc[g.Arg[i]])
			}
			if tg := g.RecvTag[recvs]; tg != anyTag && tg != g.MsgTag[g.Arg[i]] {
				return fmt.Errorf("analytic: recv op %d pattern tag=%d but consumed message %d has tag %d",
					i, tg, g.Arg[i], g.MsgTag[g.Arg[i]])
			}
			recvs++
		}
	}
	if sends != len(g.MsgSrc) {
		return fmt.Errorf("analytic: %d send ops for %d messages", sends, len(g.MsgSrc))
	}
	if recvs != len(g.RecvFrom) {
		return fmt.Errorf("analytic: %d recv ops for %d patterns", recvs, len(g.RecvFrom))
	}
	if !paramsFinite(g.Ref) {
		return fmt.Errorf("analytic: non-finite reference parameters")
	}
	return nil
}

func paramsFinite(p network.Params) bool {
	return !math.IsNaN(p.IntraBandwidth) && !math.IsInf(p.IntraBandwidth, 0) &&
		!math.IsNaN(p.WANBandwidth) && !math.IsInf(p.WANBandwidth, 0) &&
		!math.IsNaN(p.WANMessageRTTFactor) && !math.IsInf(p.WANMessageRTTFactor, 0)
}

// MemoryBytes estimates the graph's in-memory footprint, for reporting.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.Ops))*(1+4+8) + int64(len(g.MsgSrc))*(4+4+8+8) +
		int64(len(g.RecvFrom))*(4+8+1) + int64(len(g.ClusterOf))*4
}
