package analytic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"twolayer/internal/network"
	"twolayer/internal/sim"
)

// randomPoints derives a point set from a graph's reference parameters the
// way real sweeps do: mostly WAN-only variations (shared LAN prefix), with
// optional LAN perturbations mixed in to exercise the non-uniform batch
// path, plus the degenerate corners sensitivity analysis asks for
// (zero latency, infinite bandwidth).
func randomPoints(r *rand.Rand, ref network.Params, n int, mixLan bool) []network.Params {
	ps := make([]network.Params, n)
	for i := range ps {
		p := ref
		p.WANLatency = sim.Time(r.Int63n(300_000_000))
		p.WANBandwidth = 1e4 + r.Float64()*1e7
		switch r.Intn(8) {
		case 0:
			p.WANLatency = 0
		case 1:
			p.WANBandwidth = math.MaxFloat64
		}
		if mixLan && r.Intn(3) == 0 {
			p.IntraLatency = sim.Time(r.Intn(50_000))
			p.IntraBandwidth = 1e6 + r.Float64()*1e8
			p.SendOverhead = sim.Time(r.Intn(20_000))
			p.RecvOverhead = sim.Time(r.Intn(20_000))
		}
		ps[i] = p
	}
	return ps
}

// TestSolveBatchMatchesScalar is the batched-vs-scalar property test: over
// randomized recorded graphs and random point sets — WAN-only sweeps that
// share the prefix snapshot, mixed-LAN sets that cannot, and batches both
// smaller and larger than one lane chunk — SolveBatch must be bit-identical
// to per-point Solve, whether the scalar answers come from a fresh
// evaluator or from the same evaluator (prefix-snapshot reuse in effect,
// in both orders).
func TestSolveBatchMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		g := randomGraph(r, true)
		mixLan := i%2 == 1
		n := 1 + r.Intn(2*batchLanes+7)
		ps := randomPoints(r, g.Ref, n, mixLan)

		// Scalar answers from a fresh evaluator.
		fresh := NewEval(g)
		want := make([]sim.Time, n)
		for j, p := range ps {
			want[j] = fresh.Solve(p)
		}

		// Batch before any scalar solve (cold snapshot)...
		ev := NewEval(g)
		got := ev.SolveBatch(ps)
		for j := range ps {
			if got[j] != want[j] {
				t.Fatalf("graph %d point %d: cold SolveBatch %d, scalar %d", i, j, got[j], want[j])
			}
		}
		// ...then scalar solves on the same evaluator (its snapshot now
		// warm from the batch pass)...
		for j, p := range ps {
			if again := ev.Solve(p); again != want[j] {
				t.Fatalf("graph %d point %d: scalar after batch %d, want %d", i, j, again, want[j])
			}
		}
		// ...then batch again on the warmed evaluator.
		warm := ev.SolveBatch(ps)
		for j := range ps {
			if warm[j] != want[j] {
				t.Fatalf("graph %d point %d: warm SolveBatch %d, want %d", i, j, warm[j], want[j])
			}
		}
		if st := ev.Stats(); st.BatchPoints != 2*n || st.BatchSolves == 0 {
			t.Fatalf("graph %d: batch counters off: %+v for %d points twice", i, st, n)
		}
	}
}

// TestSolveBatchParallelMatchesScalar pins the sharded frozen pass at
// several worker counts against per-point Solve.
func TestSolveBatchParallelMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		g := randomGraph(r, true)
		n := 1 + r.Intn(4*batchLanes)
		ps := randomPoints(r, g.Ref, n, i%3 == 0)
		fresh := NewEval(g)
		want := make([]sim.Time, n)
		for j, p := range ps {
			want[j] = fresh.Solve(p)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			got := NewEval(g).SolveBatchParallel(ps, workers)
			for j := range ps {
				if got[j] != want[j] {
					t.Fatalf("graph %d workers %d point %d: %d, want %d", i, workers, j, got[j], want[j])
				}
			}
		}
	}
}

// TestSolveMatchedBatchMatchesScalar pins the clone-sharded matched replay
// against per-point SolveMatched at several worker counts — including
// graphs with no wildcard receives, where the matched engine's choice
// collapses to the frozen pass (the engine-choice fast path).
func TestSolveMatchedBatchMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		wildcards := i%4 != 0 // every 4th graph is all-specific: frozen fast path
		g := randomGraph(r, wildcards)
		n := 1 + r.Intn(40)
		ps := randomPoints(r, g.Ref, n, i%2 == 0)
		fresh := NewEval(g)
		want := make([]sim.Time, n)
		for j, p := range ps {
			want[j] = fresh.SolveMatched(p)
		}
		for _, workers := range []int{1, 2, 5} {
			got := NewEval(g).SolveMatchedBatch(ps, workers)
			for j := range ps {
				if got[j] != want[j] {
					t.Fatalf("graph %d (wildcards=%v) workers %d point %d: %d, want %d",
						i, wildcards, workers, j, got[j], want[j])
				}
			}
		}
	}
}

// TestCloneMatchesParent: a clone made mid-life (snapshot warm, matched
// streams built) answers exactly like its parent, and using it does not
// disturb the parent.
func TestCloneMatchesParent(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		g := randomGraph(r, true)
		ps := randomPoints(r, g.Ref, 8, false)
		parent := NewEval(g)
		parent.Solve(ps[0])        // warm the prefix snapshot
		parent.SolveMatched(ps[0]) // build the matched streams
		cl := parent.Clone()
		for _, p := range ps {
			pf, pm := parent.Solve(p), parent.SolveMatched(p)
			cf, cm := cl.Solve(p), cl.SolveMatched(p)
			if pf != cf || pm != cm {
				t.Fatalf("graph %d: clone diverged: frozen %d/%d matched %d/%d", i, pf, cf, pm, cm)
			}
		}
	}
}

// TestClonesSolveConcurrently is the -race regression test for the
// documented contract: one parent evaluator, several clones, all solving
// the same shared graph from their own goroutines simultaneously.
func TestClonesSolveConcurrently(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(11)), true)
	ps := randomPoints(rand.New(rand.NewSource(12)), g.Ref, 16, false)
	parent := NewEval(g)
	parent.SolveMatched(ps[0]) // build shared streams before cloning
	wantF := make([]sim.Time, len(ps))
	wantM := make([]sim.Time, len(ps))
	for i, p := range ps {
		wantF[i] = parent.Solve(p)
		wantM[i] = parent.SolveMatched(p)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		cl := parent.Clone()
		go func(cl *Eval) {
			for i, p := range ps {
				if got := cl.Solve(p); got != wantF[i] {
					done <- fmtErr("clone Solve point %d: %d, want %d", i, got, wantF[i])
					return
				}
				if got := cl.SolveMatched(p); got != wantM[i] {
					done <- fmtErr("clone SolveMatched point %d: %d, want %d", i, got, wantM[i])
					return
				}
				if got := cl.SolveBatch(ps); got[i] != wantF[i] {
					done <- fmtErr("clone SolveBatch point %d: %d, want %d", i, got[i], wantF[i])
					return
				}
			}
			done <- nil
		}(cl)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// TestBatchSensitivityCorners: the degenerate points sensitivity
// decomposition feeds through the batch path (zero latency, infinite
// bandwidth) agree with the scalar Sensitivity implementation.
func TestBatchSensitivityCorners(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 20; i++ {
		g := randomGraph(r, true)
		p := g.Ref
		p.WANLatency = p.WANLatency*2 + 1
		zeroLat := p
		zeroLat.WANLatency = 0
		infBW := p
		infBW.WANBandwidth = math.MaxFloat64
		s := NewEval(g).Sensitivity(p)
		ts := NewEval(g).SolveBatch([]network.Params{p, zeroLat, infBW})
		if s.Elapsed != ts[0] || s.LatencyCost != ts[0]-ts[1] || s.BandwidthCost != ts[0]-ts[2] {
			t.Fatalf("graph %d: batch sensitivity diverged: scalar %+v, batch %v", i, s, ts)
		}
	}
}

func fmtErr(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
