package regime

import (
	"strings"
	"testing"

	"twolayer/internal/sim"
	"twolayer/internal/wantopo"
)

func TestValidate(t *testing.T) {
	valid := []Params{
		{},
		{Spec: "diurnal"},
		{Spec: "diurnal:250ms"},
		{Spec: "diurnal:250ms:16", Seed: 9},
		{Spec: "diurnal::16"}, // empty arg keeps the default period
		{Spec: "congestion"},
		{Spec: "congestion:8:6:40ms"},
		{Spec: "churn"},
		{Spec: "churn:2s:500ms"},
		{Spec: "rel"},
		{Spec: "diurnal:1s:8+congestion+churn:1s:100ms+rel", Seed: 3},
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("valid %+v rejected: %v", p, err)
		}
	}
	invalid := []struct {
		p    Params
		want string
	}{
		{Params{Seed: 5}, "seed 5 without a spec"},
		{Params{Spec: "diurnal", Seed: -1}, "negative seed"},
		{Params{Spec: "tides"}, "unknown clause"},
		{Params{Spec: "diurnal+"}, "empty clause"},
		{Params{Spec: "diurnal+diurnal"}, "duplicate diurnal"},
		{Params{Spec: "congestion+congestion:4"}, "duplicate congestion"},
		{Params{Spec: "churn:1s+churn"}, "duplicate churn"},
		{Params{Spec: "diurnal:xyz"}, "bad period"},
		{Params{Spec: "diurnal:-1s"}, "must be positive"},
		{Params{Spec: "diurnal:1s:0.5"}, "must be >= 1"},
		{Params{Spec: "diurnal:1s:NaN"}, "NaN"},
		{Params{Spec: "diurnal:1s:8:extra"}, "too many arguments"},
		{Params{Spec: "congestion:-2"}, "negative congestion flow count"},
		{Params{Spec: "congestion:2:-1"}, "negative congestion intensity"},
		{Params{Spec: "churn:1s:1s"}, "shorter than the period"},
		{Params{Spec: "churn:1s:2s"}, "shorter than the period"},
		{Params{Spec: "rel:1"}, "takes no arguments"},
	}
	for _, tc := range invalid {
		err := tc.p.Validate()
		if err == nil {
			t.Errorf("invalid %+v accepted", tc.p)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: error %q does not mention %q", tc.p, err, tc.want)
		}
	}
}

func TestPlanProperties(t *testing.T) {
	pl, err := NewPlan(Params{Spec: "churn:1s:250ms+rel", Seed: 4}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.HasChurn() || !pl.NeedsTransport() {
		t.Error("churn plan must report churn and require the transport")
	}
	pl, err = NewPlan(Params{Spec: "diurnal"}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pl.HasChurn() || pl.NeedsTransport() {
		t.Error("pure diurnal plan requires no transport")
	}
	pl, err = NewPlan(Params{Spec: "rel"}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.NeedsTransport() {
		t.Error("rel clause must force the transport")
	}
	if _, err := NewPlan(Params{}, nil, 4); err == nil {
		t.Error("empty spec compiled into a plan")
	}
}

// TestEdgeScaleDegradationOnly: the conservative parallel lookahead depends
// on every regime only ever slowing links down — latency scale >= 1 and
// bandwidth scale in (0, 1] at every time, on every edge, through negative
// times included (pre-run probes clamp to 0).
func TestEdgeScaleDegradationOnly(t *testing.T) {
	specs := []string{
		"diurnal:100ms:8",
		"congestion:16:6:70ms",
		"diurnal:300ms:4+congestion:8:2:110ms",
	}
	for _, spec := range specs {
		pl, err := NewPlan(Params{Spec: spec, Seed: 11}, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		w := wantopo.Clique(4)
		for e := 0; e < w.NumEdges(); e++ {
			for _, at := range []sim.Time{-sim.Second, 0, 1, 12345678, 50 * sim.Millisecond,
				sim.Second, 3*sim.Second + 7} {
				ls, bs := pl.EdgeScale(e, at)
				if ls < 1 {
					t.Fatalf("%s: edge %d at %v: latency scale %g < 1", spec, e, at, ls)
				}
				if bs <= 0 || bs > 1 {
					t.Fatalf("%s: edge %d at %v: bandwidth scale %g outside (0,1]", spec, e, at, bs)
				}
			}
		}
	}
}

// TestDiurnalShape: the triangle wave touches its configured factor at the
// cycle midpoint and returns to 1 at the edges (phase folded out).
func TestDiurnalShape(t *testing.T) {
	pl, err := NewPlan(Params{Spec: "diurnal:100ms:8"}, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	period := 100 * sim.Millisecond
	edge := -pl.diurnalPhase
	for edge < 0 {
		edge += period
	}
	if ls, _ := pl.EdgeScale(0, edge); ls > 1.001 {
		t.Errorf("cycle edge scale %g, want ~1", ls)
	}
	if ls, _ := pl.EdgeScale(0, edge+period/2); ls < 7.9 {
		t.Errorf("cycle midpoint scale %g, want ~8", ls)
	}
}

// TestChurnDownUpConsistency: at most one cluster is down at a time, down
// intervals respect the configured duty cycle, and UpAt names a rejoin time
// that is actually up and within the down window's remainder.
func TestChurnDownUpConsistency(t *testing.T) {
	const clusters = 4
	down := 250 * sim.Millisecond
	pl, err := NewPlan(Params{Spec: "churn:1s:250ms", Seed: 2}, nil, clusters)
	if err != nil {
		t.Fatal(err)
	}
	sawDown := false
	for step := sim.Time(0); step < 10*sim.Second; step += 7 * sim.Millisecond {
		nDown := 0
		for c := 0; c < clusters; c++ {
			if !pl.ClusterDown(c, step) {
				if up := pl.UpAt(c, step); up != step {
					t.Fatalf("UpAt moved an up cluster: %v -> %v", step, up)
				}
				continue
			}
			nDown++
			sawDown = true
			up := pl.UpAt(c, step)
			if up <= step {
				t.Fatalf("cluster %d down at %v but UpAt %v not in the future", c, step, up)
			}
			if up-step > down {
				t.Fatalf("cluster %d down at %v until %v: longer than the %v window", c, step, up, down)
			}
			if pl.ClusterDown(c, up) {
				t.Fatalf("cluster %d still down at its own rejoin time %v", c, up)
			}
		}
		if nDown > 1 {
			t.Fatalf("%d clusters down at once at %v", nDown, step)
		}
	}
	if !sawDown {
		t.Error("no cluster ever churned out over 10 virtual seconds")
	}
	// A single cluster has no one to talk to and is never churned.
	solo, err := NewPlan(Params{Spec: "churn:1s:250ms", Seed: 2}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for step := sim.Time(0); step < 3*sim.Second; step += 11 * sim.Millisecond {
		if solo.ClusterDown(0, step) {
			t.Fatal("single-cluster machine churned itself out")
		}
	}
}

// TestChurnVictimRotates: over many cycles the seeded victim choice must
// spread across clusters, not pin one site forever.
func TestChurnVictimRotates(t *testing.T) {
	pl, err := NewPlan(Params{Spec: "churn:1s:250ms", Seed: 6}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for k := int64(0); k < 64; k++ {
		v := pl.churnVictim(k)
		if v < 0 || v >= 4 {
			t.Fatalf("victim %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 4 {
		t.Errorf("64 cycles churned only clusters %v", seen)
	}
}

// TestCongestionFlowsWellFormed: seeded flows never loop back to their own
// cluster, and every flow is routed over at least one wide-area edge.
func TestCongestionFlowsWellFormed(t *testing.T) {
	w, err := wantopo.Parse("ring", 8)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlan(Params{Spec: "congestion:24:4:80ms", Seed: 5}, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.flows) != 24 {
		t.Fatalf("asked for 24 flows, got %d", len(pl.flows))
	}
	routed := 0
	for _, ef := range pl.edgeFlows {
		routed += len(ef)
	}
	if routed == 0 {
		t.Fatal("no flow loads any edge")
	}
	for i, f := range pl.flows {
		if f.src == f.dst {
			t.Errorf("flow %d loops on cluster %d", i, f.src)
		}
	}
}

// TestDeterminism: equal parameters produce bit-identical plans — same
// phases, same victims, same scales at every probed time; a different seed
// moves at least something.
func TestDeterminism(t *testing.T) {
	mk := func(seed int64) *Plan {
		pl, err := NewPlan(Params{Spec: "diurnal:90ms:8+congestion:8:4:70ms+churn:400ms:100ms", Seed: seed}, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	a, b := mk(7), mk(7)
	other := mk(8)
	diverged := false
	for _, at := range []sim.Time{0, 33 * sim.Millisecond, 217 * sim.Millisecond, 3 * sim.Second} {
		for e := 0; e < 6; e++ {
			al, ab := a.EdgeScale(e, at)
			bl, bb := b.EdgeScale(e, at)
			if al != bl || ab != bb {
				t.Fatalf("same seed diverged on edge %d at %v", e, at)
			}
			if ol, ob := other.EdgeScale(e, at); ol != al || ob != ab {
				diverged = true
			}
		}
		for c := 0; c < 4; c++ {
			if a.ClusterDown(c, at) != b.ClusterDown(c, at) || a.UpAt(c, at) != b.UpAt(c, at) {
				t.Fatalf("same seed diverged on churn for cluster %d at %v", c, at)
			}
		}
	}
	if !diverged {
		t.Error("seeds 7 and 8 produced identical conditions everywhere probed")
	}
}
