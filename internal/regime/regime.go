// Package regime is a deterministic dynamic-scenario plane for the
// simulated wide-area interconnect. Where package faults models stationary
// unreliability (a fixed drop rate, periodic per-link outages), a regime
// models the *time-varying* conditions of a real shared WAN: diurnal
// latency/bandwidth curves, congestion from background traffic on shared
// links, and whole-cluster churn (a site leaves for an interval and
// rejoins).
//
// Every quantity a regime produces is a pure function of (Seed, virtual
// time, link identity) — no wall clock, no mutable state, no global RNG.
// Two runs with equal seeds see bit-identical conditions, at any worker
// count: the cluster-parallel engine can evaluate the same plan from every
// shard and get the same answers, because there is nothing to race on.
//
// Degradation-only fluctuation. A regime only ever *slows* the wide-area
// links: latency scale factors are >= 1 and bandwidth scale factors are
// <= 1 at all times. This is what keeps the conservative cluster-parallel
// lookahead (network.Params.WANLookaheadFor) a true lower bound on
// cross-cluster delivery — fluctuation pushes deliveries later, never
// earlier — so regime runs stay bit-identical at every worker count
// without touching the synchronization protocol.
package regime

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"twolayer/internal/sim"
	"twolayer/internal/wantopo"
)

// Params selects a regime. The zero value disables the dynamic plane
// entirely and leaves every code path byte-identical to a regime-free run.
// Params is comparable and JSON-encodes to {} when zero, so it can extend
// cache keys under `json:",omitzero"` without disturbing existing entries.
type Params struct {
	// Spec is the regime grammar: one or more clauses joined by "+".
	//
	//	diurnal[:PERIOD[:FACTOR]]
	//	    Piecewise-linear (triangle-wave) daily load curve: over each
	//	    PERIOD (default 1s) the wide-area latency scales 1 -> FACTOR -> 1
	//	    and the bandwidth 1 -> 1/FACTOR -> 1 (default FACTOR 8). The
	//	    wave's phase is seed-derived.
	//	congestion[:FLOWS[:INTENSITY[:PERIOD]]]
	//	    FLOWS seeded background flows (default 2 per cluster), each
	//	    between a seeded cluster pair, each on for half of every PERIOD
	//	    (default 500ms) with a seeded phase. A flow loads every
	//	    wide-area link on its route (multi-hop graphs included), and a
	//	    link carrying L active flows runs at bandwidth/(1+INTENSITY*L)
	//	    with latency *(1+INTENSITY*L/4) (default INTENSITY 4).
	//	churn[:PERIOD[:DOWN]]
	//	    Whole-cluster churn: in each PERIOD (default 1s) one
	//	    seed-chosen cluster is unreachable for the first DOWN (default
	//	    PERIOD/4); the victim rotates per cycle. Messages to or from a
	//	    down cluster are dropped at the gateway, and the go-back-N
	//	    reliable transport (enabled automatically) repairs them after
	//	    the rejoin.
	//	rel
	//	    Force the reliable transport on even without churn, so regime
	//	    comparisons measure the same protocol stack.
	//
	// Example: "diurnal:400ms:8+churn:1s:250ms".
	Spec string
	// Seed drives every seeded choice (phases, churn victims, flow
	// endpoints). Runs with equal seeds see identical conditions.
	Seed int64
}

// Enabled reports whether a regime is configured.
func (p Params) Enabled() bool { return p.Spec != "" }

// Validate parses the spec and rejects malformed clauses and a negative
// seed. The zero value is valid (regime disabled).
func (p Params) Validate() error {
	if p.Spec == "" {
		if p.Seed != 0 {
			return fmt.Errorf("regime: seed %d without a spec", p.Seed)
		}
		return nil
	}
	if p.Seed < 0 {
		return fmt.Errorf("regime: negative seed %d", p.Seed)
	}
	_, err := parseSpec(p.Spec)
	return err
}

// clauses is the parsed form of a spec.
type clauses struct {
	diurnal    *diurnalClause
	congestion *congestionClause
	churn      *churnClause
	rel        bool
}

type diurnalClause struct {
	period sim.Time
	factor float64
}

type congestionClause struct {
	flows     int // 0 = 2 per cluster, resolved at bind time
	intensity float64
	period    sim.Time
}

type churnClause struct {
	period sim.Time
	down   sim.Time
}

// parseSpec parses the clause grammar; see Params.Spec.
func parseSpec(spec string) (clauses, error) {
	var cl clauses
	for _, part := range strings.Split(spec, "+") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		switch fields[0] {
		case "diurnal":
			if cl.diurnal != nil {
				return cl, fmt.Errorf("regime: duplicate diurnal clause in %q", spec)
			}
			d := &diurnalClause{period: sim.Second, factor: 8}
			if err := parseArgs(part, fields[1:],
				durArg(&d.period, "period"), floatArg(&d.factor, "factor")); err != nil {
				return cl, err
			}
			if d.factor < 1 {
				return cl, fmt.Errorf("regime: diurnal factor %g must be >= 1 (regimes only degrade links)", d.factor)
			}
			cl.diurnal = d
		case "congestion":
			if cl.congestion != nil {
				return cl, fmt.Errorf("regime: duplicate congestion clause in %q", spec)
			}
			c := &congestionClause{intensity: 4, period: 500 * sim.Millisecond}
			if err := parseArgs(part, fields[1:],
				intArg(&c.flows, "flows"), floatArg(&c.intensity, "intensity"), durArg(&c.period, "period")); err != nil {
				return cl, err
			}
			if c.flows < 0 {
				return cl, fmt.Errorf("regime: negative congestion flow count %d", c.flows)
			}
			if c.intensity < 0 {
				return cl, fmt.Errorf("regime: negative congestion intensity %g", c.intensity)
			}
			cl.congestion = c
		case "churn":
			if cl.churn != nil {
				return cl, fmt.Errorf("regime: duplicate churn clause in %q", spec)
			}
			ch := &churnClause{period: sim.Second}
			if err := parseArgs(part, fields[1:],
				durArg(&ch.period, "period"), durArg(&ch.down, "down")); err != nil {
				return cl, err
			}
			if ch.down == 0 {
				ch.down = ch.period / 4
			}
			if ch.down >= ch.period {
				return cl, fmt.Errorf("regime: churn down time %v must be shorter than the period %v (a cluster that never rejoins cannot drain its traffic)", ch.down, ch.period)
			}
			cl.churn = ch
		case "rel":
			if len(fields) > 1 {
				return cl, fmt.Errorf("regime: rel clause takes no arguments (%q)", part)
			}
			cl.rel = true
		case "":
			return cl, fmt.Errorf("regime: empty clause in %q", spec)
		default:
			return cl, fmt.Errorf("regime: unknown clause %q (want diurnal, congestion, churn or rel)", fields[0])
		}
	}
	return cl, nil
}

// argSetter parses one positional clause argument.
type argSetter struct {
	name string
	set  func(string) error
}

func durArg(dst *sim.Time, name string) argSetter {
	return argSetter{name, func(s string) error {
		d, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		if d <= 0 {
			return fmt.Errorf("must be positive, got %v", d)
		}
		*dst = sim.Time(d.Nanoseconds())
		return nil
	}}
}

func floatArg(dst *float64, name string) argSetter {
	return argSetter{name, func(s string) error {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return err
		}
		if v != v {
			return fmt.Errorf("must not be NaN")
		}
		*dst = v
		return nil
	}}
}

func intArg(dst *int, name string) argSetter {
	return argSetter{name, func(s string) error {
		v, err := strconv.Atoi(s)
		if err != nil {
			return err
		}
		*dst = v
		return nil
	}}
}

func parseArgs(clause string, args []string, setters ...argSetter) error {
	if len(args) > len(setters) {
		return fmt.Errorf("regime: too many arguments in clause %q", clause)
	}
	for i, a := range args {
		if a == "" {
			continue // "diurnal::16" keeps the default period
		}
		if err := setters[i].set(a); err != nil {
			return fmt.Errorf("regime: bad %s in clause %q: %v", setters[i].name, clause, err)
		}
	}
	return nil
}

// flow is one seeded background traffic flow for the congestion clause.
type flow struct {
	src, dst int
	phase    sim.Time // on/off square-wave phase offset
}

// Plan is a compiled regime bound to a wide-area graph. It is immutable
// after NewPlan and therefore safe to share across the shards of a
// cluster-parallel run: every query is a pure function of virtual time.
type Plan struct {
	p        Params
	cl       clauses
	clusters int

	// Congestion state, precomputed at bind time: the flows and, per
	// wide-area edge, the indices of the flows routed over it.
	flows     []flow
	edgeFlows [][]int32

	diurnalPhase sim.Time
	churnPhase   sim.Time
}

// NewPlan compiles the parameters against the wide-area graph the run uses
// (the congestion clause routes its background flows over it). A nil graph
// means the fully connected clique over `clusters`.
func NewPlan(p Params, w *wantopo.WAN, clusters int) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, fmt.Errorf("regime: empty spec")
	}
	cl, err := parseSpec(p.Spec)
	if err != nil {
		return nil, err
	}
	if w == nil {
		w = wantopo.Clique(clusters)
	}
	pl := &Plan{p: p, cl: cl, clusters: clusters}
	if d := cl.diurnal; d != nil {
		pl.diurnalPhase = sim.Time(pl.hash(saltDiurnalPhase, 0) % uint64(d.period))
	}
	if ch := cl.churn; ch != nil {
		pl.churnPhase = sim.Time(pl.hash(saltChurnPhase, 0) % uint64(ch.period))
	}
	if c := cl.congestion; c != nil {
		nf := c.flows
		if nf == 0 {
			nf = 2 * clusters
		}
		pl.flows = make([]flow, nf)
		pl.edgeFlows = make([][]int32, w.NumEdges())
		for i := range pl.flows {
			f := &pl.flows[i]
			f.src = int(pl.hash(saltFlowSrc, uint64(i)) % uint64(clusters))
			if clusters > 1 {
				f.dst = int(pl.hash(saltFlowDst, uint64(i)) % uint64(clusters-1))
				if f.dst >= f.src {
					f.dst++
				}
			}
			f.phase = sim.Time(pl.hash(saltFlowPhase, uint64(i)) % uint64(c.period))
			for _, id := range w.Route(f.src, f.dst) {
				pl.edgeFlows[id] = append(pl.edgeFlows[id], int32(i))
			}
		}
	}
	return pl, nil
}

// Params returns the plan's configuration.
func (pl *Plan) Params() Params { return pl.p }

// HasChurn reports whether the regime includes whole-cluster churn.
func (pl *Plan) HasChurn() bool { return pl.cl.churn != nil }

// NeedsTransport reports whether runs under this regime require the
// reliable transport: churn drops messages (they must be repaired), and the
// rel clause requests the transport explicitly.
func (pl *Plan) NeedsTransport() bool { return pl.cl.churn != nil || pl.cl.rel }

// Stream salts for the seeded choices.
const (
	saltDiurnalPhase = iota + 1
	saltChurnPhase
	saltChurnPick
	saltFlowSrc
	saltFlowDst
	saltFlowPhase
)

// mix64 is the splitmix64 finalizer, the same construction packages faults
// and par use for their deterministic streams.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash folds (seed, salt, index) into a uniform 64-bit value.
func (pl *Plan) hash(salt uint64, idx uint64) uint64 {
	h := mix64(uint64(pl.p.Seed) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ salt<<48)
	return mix64(h ^ idx)
}

// diurnalScale returns the triangle-wave load scale at time t: 1 at the
// cycle edges, factor at the midpoint, linear in between.
func (pl *Plan) diurnalScale(t sim.Time) float64 {
	d := pl.cl.diurnal
	x := float64((t+pl.diurnalPhase)%d.period) / float64(d.period)
	tri := 1 - abs(2*x-1) // 0 -> 1 -> 0 over the cycle
	return 1 + (d.factor-1)*tri
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// edgeLoad counts the background flows active on the given wide-area edge
// at time t.
func (pl *Plan) edgeLoad(edgeID int, t sim.Time) int {
	c := pl.cl.congestion
	n := 0
	for _, fi := range pl.edgeFlows[edgeID] {
		f := &pl.flows[fi]
		if (t+f.phase)%c.period < c.period/2 {
			n++
		}
	}
	return n
}

// EdgeScale returns the latency and bandwidth scale factors of one
// wide-area edge at virtual time t. The latency scale is always >= 1 and
// the bandwidth scale always in (0, 1]: regimes only degrade links (see the
// package comment for why that preserves the parallel lookahead).
func (pl *Plan) EdgeScale(edgeID int, t sim.Time) (latScale, bwScale float64) {
	latScale, bwScale = 1, 1
	if t < 0 {
		t = 0
	}
	if pl.cl.diurnal != nil {
		s := pl.diurnalScale(t)
		latScale *= s
		bwScale /= s
	}
	if c := pl.cl.congestion; c != nil && edgeID < len(pl.edgeFlows) {
		if l := pl.edgeLoad(edgeID, t); l > 0 {
			load := c.intensity * float64(l)
			latScale *= 1 + load/4
			bwScale /= 1 + load
		}
	}
	return latScale, bwScale
}

// churnVictim returns the cluster churned out during cycle k.
func (pl *Plan) churnVictim(k int64) int {
	return int(pl.hash(saltChurnPick, uint64(k)) % uint64(pl.clusters))
}

// ClusterDown reports whether cluster c is churned out at virtual time t.
func (pl *Plan) ClusterDown(c int, t sim.Time) bool {
	ch := pl.cl.churn
	if ch == nil || pl.clusters < 2 || t < 0 {
		return false
	}
	tt := t + pl.churnPhase
	if int64(tt)%int64(ch.period) >= int64(ch.down) {
		return false
	}
	return pl.churnVictim(int64(tt)/int64(ch.period)) == c
}

// UpAt returns the time cluster c rejoins if it is down at t, and t itself
// otherwise. Adaptive transports use it to schedule a retransmission just
// after the rejoin instead of backing off blindly.
func (pl *Plan) UpAt(c int, t sim.Time) sim.Time {
	if !pl.ClusterDown(c, t) {
		return t
	}
	ch := pl.cl.churn
	tt := int64(t + pl.churnPhase)
	cycleStart := tt - tt%int64(ch.period)
	return sim.Time(cycleStart+int64(ch.down)) - pl.churnPhase
}
