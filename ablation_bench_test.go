// Ablation benchmarks for the design choices DESIGN.md calls out: each one
// toggles a single knob of an optimization (or of the interconnect model)
// and reports the headline metric, showing why the design is the way it is.
package twolayer_test

import (
	"testing"

	"twolayer"
	"twolayer/internal/apps/asp"
	"twolayer/internal/apps/tsp"
	"twolayer/internal/apps/water"
	"twolayer/internal/network"
	"twolayer/internal/par"
	"twolayer/internal/topology"
)

// BenchmarkAblationASPSequencer compares the paper's two ways of fixing
// ASP's ordering traffic: migrating the sequencer vs dropping it entirely
// (the alternative the paper suggests in Section 3.2).
func BenchmarkAblationASPSequencer(b *testing.B) {
	params := network.DefaultParams().WithWAN(30*twolayer.Millisecond, 6e6)
	for _, mode := range []struct {
		name string
		drop bool
	}{{"migrating-sequencer", false}, {"no-sequencer", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var elapsed twolayer.Time
			for i := 0; i < b.N; i++ {
				cfg := asp.ConfigFor(twolayer.PaperScale)
				cfg.DropSequencer = mode.drop
				inst := asp.New(cfg, 32)
				res, err := par.Run(topology.DAS(), params, 42, inst.Job(true))
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "vsec/run")
		})
	}
}

// BenchmarkAblationTSPStealBatch varies the work-stealing transfer size:
// per-job stealing pays one wide-area round trip per job at the tail,
// half-queue batches amortize it.
func BenchmarkAblationTSPStealBatch(b *testing.B) {
	params := network.DefaultParams().WithWAN(100*twolayer.Millisecond, 6e6)
	for _, mode := range []struct {
		name  string
		batch int
	}{{"half-queue", 0}, {"batch-4", 4}, {"single-job", 1}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var elapsed twolayer.Time
			for i := 0; i < b.N; i++ {
				cfg := tsp.ConfigFor(twolayer.PaperScale)
				cfg.StealBatch = mode.batch
				inst := tsp.New(cfg, 32)
				res, err := par.Run(topology.DAS(), params, 42, inst.Job(true))
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "vsec/run")
		})
	}
}

// BenchmarkAblationWaterCoordinatorPlacement compares round-robin
// coordinator placement against concentrating every remote owner's
// coordination on the cluster's first rank.
func BenchmarkAblationWaterCoordinatorPlacement(b *testing.B) {
	params := network.DefaultParams().WithWAN(3300*twolayer.Microsecond, 0.95e6)
	for _, mode := range []struct {
		name  string
		fixed bool
	}{{"spread", false}, {"fixed-rank0", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var elapsed twolayer.Time
			for i := 0; i < b.N; i++ {
				cfg := water.ConfigFor(twolayer.PaperScale)
				cfg.FixedCoordinators = mode.fixed
				inst := water.New(cfg, 32)
				res, err := par.Run(topology.DAS(), params, 42, inst.Job(true))
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "vsec/run")
		})
	}
}

// BenchmarkAblationTCPSurcharge shows how much of MagPIe's reported 10x win
// over MPICH is explained by per-message TCP costs on the wide area: the
// clean link model yields the tree-depth ratio (~3x), adding an
// RTT-proportional per-message surcharge widens it.
func BenchmarkAblationTCPSurcharge(b *testing.B) {
	topo, err := twolayer.Uniform(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		factor float64
	}{{"clean-links", 0}, {"tcp-like", 0.75}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			params := twolayer.DefaultParams().WithWAN(10*twolayer.Millisecond, 1e6)
			params.WANMessageRTTFactor = mode.factor
			var best float64
			for i := 0; i < b.N; i++ {
				results, err := twolayer.CollectiveComparison(topo, params, 64, 1)
				if err != nil {
					b.Fatal(err)
				}
				best = 0
				for _, r := range results {
					if r.Speedup > best {
						best = r.Speedup
					}
				}
			}
			b.ReportMetric(best, "best_speedup")
		})
	}
}

// BenchmarkAblationVariability prices the paper's future-work question: how
// much does wide-area fluctuation cost on top of the mean gap?
func BenchmarkAblationVariability(b *testing.B) {
	base := network.DefaultParams().WithWAN(10*twolayer.Millisecond, 1e6)
	app, err := twolayer.AppByName("Water")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		v    network.Variability
	}{
		{"stable", network.Variability{}},
		{"jittery", network.Variability{
			LatencyJitter: 20 * twolayer.Millisecond, BandwidthFactor: 0.5,
			Period: 100 * twolayer.Millisecond, Seed: 3,
		}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var elapsed twolayer.Time
			for i := 0; i < b.N; i++ {
				cfg := twolayer.Experiment{
					App: app, Scale: twolayer.PaperScale, Optimized: true,
					Topo: topology.DAS(), Params: base,
				}
				if mode.v.LatencyJitter > 0 {
					v := mode.v
					cfg.Configure = func(n *network.Network) { n.SetVariability(v) }
				}
				res, err := cfg.Run()
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed.Seconds(), "vsec/run")
		})
	}
}
