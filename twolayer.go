// Package twolayer reproduces "Sensitivity of Parallel Applications to
// Large Differences in Bandwidth and Latency in Two-Layer Interconnects"
// (Plaat, Bal, Hofman, Kielmann; HPCA 1999) as a Go library.
//
// It provides, from the bottom up:
//
//   - a deterministic discrete-event simulator of a cluster-of-clusters
//     machine with Myrinet-class intra-cluster links and configurable
//     ATM-class wide-area links (the paper's DAS testbed with its delay
//     loops),
//   - a message-passing SPMD runtime (send/receive/RPC/barrier) on top of
//     the simulated interconnect,
//   - the paper's six applications (Water, Barnes-Hut, TSP, ASP, Awari,
//     FFT), each in its original uniform-network form and its cluster-aware
//     optimized form, performing real, verified computation,
//   - the fourteen MPI-1 collectives in flat and hierarchical (MagPIe-like)
//     variants,
//   - the sensitivity-study harness that regenerates every table and
//     figure of the paper's evaluation.
//
// # Quick start
//
//	topo := twolayer.DAS() // 4 clusters x 8 processors
//	params := twolayer.DefaultParams().WithWAN(30*twolayer.Millisecond, 0.3e6)
//	app, _ := twolayer.AppByName("Water")
//	res, err := twolayer.Experiment{
//		App: app, Scale: twolayer.PaperScale, Optimized: true,
//		Topo: topo, Params: params, Verify: true,
//	}.Run()
//
// Custom parallel programs run against the same machine model:
//
//	res, err := twolayer.Run(topo, params, 1, func(e *twolayer.Env) {
//		e.Send((e.Rank()+1)%e.Size(), 1, "token", 4096)
//		e.Recv(1)
//	})
//
// See the examples directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the experiment inventory and measured results.
package twolayer

import (
	"twolayer/internal/apps"
	"twolayer/internal/collective"
	"twolayer/internal/core"
	"twolayer/internal/dsm"
	"twolayer/internal/faults"
	"twolayer/internal/micro"
	"twolayer/internal/mpi"
	"twolayer/internal/network"
	"twolayer/internal/orca"
	"twolayer/internal/par"
	"twolayer/internal/sim"
	"twolayer/internal/topology"
	"twolayer/internal/trace"
)

// Core simulation types, re-exported from the internal packages.
type (
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Topology describes a cluster-of-clusters machine.
	Topology = topology.Topology
	// NetworkParams sets the interconnect speeds.
	NetworkParams = network.Params
	// LinkStats is per-link traffic accounting.
	LinkStats = network.LinkStats
	// Env is one processor's view of the SPMD runtime.
	Env = par.Env
	// Job is an SPMD program body, run once per processor.
	Job = par.Job
	// Msg is a delivered message.
	Msg = par.Msg
	// Tag distinguishes message streams.
	Tag = par.Tag
	// Result summarizes a completed run.
	Result = par.Result
)

// Virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Problem scales for the applications.
const (
	TinyScale  = apps.Tiny
	SmallScale = apps.Small
	PaperScale = apps.Paper
)

// Scale selects an application problem size.
type Scale = apps.Scale

// AppInfo is an application registry entry (name, Table 2 metadata,
// constructor).
type AppInfo = apps.Info

// AppInstance is one configured application run.
type AppInstance = apps.Instance

// Experiment is one configured sensitivity-study run.
type Experiment = core.Experiment

// FaultParams configures deterministic wide-area fault injection (message
// loss, duplication, reordering jitter, periodic outages) for
// Experiment.Faults; the zero value injects nothing. See internal/faults.
type FaultParams = faults.Params

// TransportStats are the go-back-N reliable-transport counters a
// fault-injected run reports (Result.Transport).
type TransportStats = trace.TransportStats

// Machine construction.
var (
	// NewTopology builds a machine from per-cluster processor counts.
	NewTopology = topology.New
	// Uniform builds equal-sized clusters.
	Uniform = topology.Uniform
	// DAS is the paper's 4x8 configuration.
	DAS = topology.DAS
	// SingleCluster is the all-fast-network baseline machine.
	SingleCluster = topology.SingleCluster
)

// DefaultParams returns the testbed speeds: 20 us / 50 MByte/s inside
// clusters, 0.5 ms / 6 MByte/s between them; use WithWAN to sweep the gap.
func DefaultParams() NetworkParams { return network.DefaultParams() }

// Run executes an SPMD job on the simulated machine and returns its
// timing and traffic. The seed drives the per-rank random streams; equal
// inputs give bit-identical results.
func Run(topo *Topology, params NetworkParams, seed int64, job Job) (Result, error) {
	return par.Run(topo, params, seed, job)
}

// Apps returns the six-application suite in Table 1 order.
func Apps() []AppInfo { return core.Apps() }

// AppByName finds an application by its paper name ("Water", "Barnes-Hut",
// "TSP", "ASP", "Awari", "FFT").
func AppByName(name string) (AppInfo, error) { return core.AppByName(name) }

// Sweep axes used in the paper's evaluation.
var (
	// PaperBandwidths are the wide-area bandwidth settings (bytes/s).
	PaperBandwidths = core.Bandwidths
	// PaperLatencies are the one-way wide-area latency settings.
	PaperLatencies = core.Latencies
)

// Sensitivity-study harness types.
type (
	// Baselines caches single-cluster reference runtimes.
	Baselines = core.Baselines
	// Table1Row is one row of the paper's Table 1.
	Table1Row = core.Table1Row
	// Figure1Point is one application's Figure 1 traffic point.
	Figure1Point = core.Figure1Point
	// Figure3Panel is one of the paper's twelve speedup panels.
	Figure3Panel = core.Figure3Panel
	// Figure3Options narrows a Figure 3 sweep.
	Figure3Options = core.Figure3Options
	// Figure4Curve is one Figure 4 communication-time curve.
	Figure4Curve = core.Figure4Curve
	// GapResult is the acceptable-NUMA-gap analysis for one variant.
	GapResult = core.GapResult
	// ShapeResult is one cluster-structure measurement.
	ShapeResult = core.ShapeResult
	// CollectiveResult compares flat and hierarchical collectives.
	CollectiveResult = core.CollectiveResult
	// RunCache memoizes experiment results across sweeps.
	RunCache = core.RunCache
	// RunKey identifies a deterministic experiment in a RunCache.
	RunKey = core.RunKey
)

// Harness entry points, re-exported.
var (
	NewBaselines         = core.NewBaselines
	NewRunCache          = core.NewRunCache
	RelativeSpeedup      = core.RelativeSpeedup
	CommTimePercent      = core.CommTimePercent
	Table1               = core.Table1
	Table2               = core.Table2
	Figure1              = core.Figure1
	Figure3              = core.Figure3
	Figure4Bandwidth     = core.Figure4Bandwidth
	Figure4Latency       = core.Figure4Latency
	GapAnalysis          = core.GapAnalysis
	ClusterShapeStudy    = core.ClusterShapeStudy
	CollectiveComparison = core.CollectiveComparison
	RenderTable1         = core.RenderTable1
	RenderTable2         = core.RenderTable2
	RenderFigure1        = core.RenderFigure1
	RenderFigure3Panel   = core.RenderFigure3Panel
	RenderFigure4        = core.RenderFigure4
	RenderGaps           = core.RenderGaps
	RenderShapes         = core.RenderShapes
	RenderCollectives    = core.RenderCollectives
)

// Collective communication (Section 6 / MagPIe).
type (
	// Comm provides MPI-1 collective operations over an Env.
	Comm = collective.Comm
	// CollectiveStyle selects flat or hierarchical algorithms.
	CollectiveStyle = collective.Style
	// ReduceOp is an element-wise reduction operator.
	ReduceOp = collective.Op
)

// Collective algorithm families.
const (
	Flat         = collective.Flat
	Hierarchical = collective.Hierarchical
)

// Built-in reduction operators.
var (
	SumOp  = collective.Sum
	ProdOp = collective.Prod
	MaxOp  = collective.Max
	MinOp  = collective.Min
)

// NewComm creates a collective communicator for e; every rank must build
// one with the same style and issue the same sequence of collective calls.
func NewComm(e *Env, style CollectiveStyle) *Comm { return collective.New(e, style) }

// CollectiveOps lists the fourteen MPI-1 collective operation names.
var CollectiveOps = collective.OpNames

// Extended machine-model features (see internal/network/extensions.go).
type (
	// RunOptions configures traced or network-extended runs.
	RunOptions = par.Options
	// Variability describes deterministic wide-area fluctuation — the
	// paper's future-work question, built in.
	Variability = network.Variability
	// PairSpeed overrides one directed cluster pair's wide-area speed.
	PairSpeed = network.PairSpeed
	// Network is the interconnect instance handed to RunOptions.Configure.
	Network = network.Network
	// TraceCollector records per-message and per-compute-span events.
	TraceCollector = trace.Collector
	// TraceMessage is one recorded message.
	TraceMessage = trace.Message
	// TraceSummary aggregates a trace.
	TraceSummary = trace.Summary
	// VariabilityResult is one application's fluctuation sensitivity.
	VariabilityResult = core.VariabilityResult
)

// RunWith executes an SPMD job with extended options (tracing, per-pair
// speeds, variability).
func RunWith(topo *Topology, opts RunOptions, job Job) (Result, error) {
	return par.RunWith(topo, opts, job)
}

// NewTraceCollector creates a trace collector for a machine of the given
// size; pass it via RunOptions.Trace or Experiment.Trace.
func NewTraceCollector(procs int) *TraceCollector { return trace.NewCollector(procs) }

// VariabilityStudy and its renderer measure the cost of wide-area
// fluctuation on the optimized suite.
var (
	VariabilityStudy  = core.VariabilityStudy
	RenderVariability = core.RenderVariability
)

// MPI-style interface (the shape MagPIe shipped as: a drop-in library for
// MPI programs).
type (
	// MPIComm is an MPI-1-style communicator over the simulated machine.
	MPIComm = mpi.Comm
	// MPIRequest is a non-blocking operation handle.
	MPIRequest = mpi.Request
	// MPIStatus describes a completed receive.
	MPIStatus = mpi.Status
)

// MPIAnySource matches any sender in MPIComm.Recv.
const MPIAnySource = mpi.AnySource

// MPIWorld returns the COMM_WORLD communicator for an Env, with collective
// algorithms in the given style.
func MPIWorld(e *Env, style CollectiveStyle) *MPIComm { return mpi.World(e, style) }

// MPIWaitall completes a set of non-blocking requests.
var MPIWaitall = mpi.Waitall

// Interconnect microbenchmarks (the null-RPC / stream decomposition of
// Section 5.2).
type MicroResult = micro.Result

// Micro entry points.
var (
	MicroPatterns = micro.Patterns
	MicroMeasure  = micro.Measure
	RenderMicro   = micro.Render
)

// KernelResult compares one unchanged MPI kernel under the flat and the
// hierarchical collective library (Section 6's application-kernel claim).
type KernelResult = core.KernelResult

// MPI-kernel comparison entry points.
var (
	MPIKernelComparison = core.MPIKernelComparison
	RenderKernels       = core.RenderKernels
)

// Orca-style shared objects (the programming model five of the six paper
// applications were written in).
type (
	// OrcaRuntime is a processor's handle to the shared-object space.
	OrcaRuntime = orca.Runtime
	// OrcaHandle names a declared shared object.
	OrcaHandle = orca.Handle
	// OrcaOp is a registered object operation.
	OrcaOp = orca.Op
	// OrcaState is an object's state.
	OrcaState = orca.State
	// OrcaMode selects replication or single-owner placement.
	OrcaMode = orca.Mode
)

// Shared-object representations.
const (
	OrcaReplicated = orca.Replicated
	OrcaOwned      = orca.Owned
)

// NewOrca creates the shared-object runtime for a processor; every
// processor must create one and declare the same objects in the same
// order, and call Shutdown after its last operation.
func NewOrca(e *Env, opBytes func(op string, arg any) int64) *OrcaRuntime {
	return orca.New(e, opBytes)
}

// Software distributed shared memory (the competing model of Section 2's
// survey): page-based, sequentially consistent, home-based invalidation.
type SharedMemory = dsm.DSM

// NewSharedMemory creates the shared space for a processor; every
// processor must call it with identical sizes, synchronize with its
// Barrier (not the runtime barrier — the coherence protocol must stay
// responsive), and call Shutdown after its last access.
func NewSharedMemory(e *Env, words, pageWords int) *SharedMemory {
	return dsm.New(e, words, pageWords)
}
